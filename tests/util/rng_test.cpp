#include "ff/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ff {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 95u);  // not stuck
}

TEST(Rng, ForkByLabelIsDeterministic) {
  const Rng root(42);
  Rng a = root.fork("link/up");
  Rng b = root.fork("link/up");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForksAreIndependentStreams) {
  const Rng root(42);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkByIndexMatchesOnlySameIndex) {
  const Rng root(7);
  Rng a0 = root.fork(std::uint64_t{0});
  Rng a0_again = root.fork(std::uint64_t{0});
  Rng a1 = root.fork(std::uint64_t{1});
  EXPECT_EQ(a0.next_u64(), a0_again.next_u64());
  EXPECT_NE(a0.next_u64(), a1.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(13);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_EQ(r.uniform_int(5, 4), 5);  // hi < lo clamps to lo
}

TEST(Rng, BernoulliExtremes) {
  Rng r(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.07) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.07, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(16);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(18);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(r.exponential(1.0), 0.0);
  }
}

TEST(Rng, LognormalMedianMatches) {
  Rng r(19);
  const int n = 100001;
  std::vector<double> values(n);
  for (auto& v : values) v = r.lognormal(50.0, 0.5);
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], 50.0, 1.5);
}

TEST(Rng, HashLabelDiffersByLabel) {
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_EQ(hash_label("device/0"), hash_label("device/0"));
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ff
