#include "ff/util/sliding_window.h"

#include <gtest/gtest.h>

namespace ff {
namespace {

TEST(SlidingWindowCounter, CountsWithinWindow) {
  SlidingWindowCounter w(2 * kSecond);
  w.add(0);
  w.add(kSecond);
  EXPECT_DOUBLE_EQ(w.count(kSecond), 2.0);
}

TEST(SlidingWindowCounter, EvictsOldEntries) {
  SlidingWindowCounter w(2 * kSecond);
  w.add(0);
  w.add(kSecond);
  // At t=2s the entry at t=0 is exactly window-old and drops out.
  EXPECT_DOUBLE_EQ(w.count(2 * kSecond), 1.0);
  EXPECT_DOUBLE_EQ(w.count(3 * kSecond), 0.0);
}

TEST(SlidingWindowCounter, RateIsPerSecond) {
  SlidingWindowCounter w(2 * kSecond);
  for (int i = 0; i < 6; ++i) w.add(i * kSecond / 4);  // 6 events in 1.25s
  // Still warming up at t=1.5s: divide by the elapsed 1.5s, not the 2s
  // window.
  EXPECT_DOUBLE_EQ(w.rate(3 * kSecond / 2), 4.0);
  // Past warm-up the divisor is the window.
  for (int i = 0; i < 6; ++i) w.add(2 * kSecond + i * kSecond / 4);
  EXPECT_DOUBLE_EQ(w.rate(7 * kSecond / 2), 3.0);  // 6 events / 2s window
}

// Regression: rate() used to divide by the full window even when the clock
// had not yet advanced past it, underestimating every rate during the first
// window of a run (e.g. 30 events in the first second reported as 15/s over
// a 2s window) and biasing the controller's earliest ticks.
TEST(SlidingWindowCounter, WarmupRateUsesElapsedTime) {
  SlidingWindowCounter w(2 * kSecond);
  for (int i = 0; i < 30; ++i) w.add(i * kSecond / 30);
  EXPECT_DOUBLE_EQ(w.rate(kSecond), 30.0);
}

TEST(SlidingWindowCounter, RateAtTimeZeroIsZero) {
  SlidingWindowCounter w(2 * kSecond);
  w.add(0, 5.0);
  EXPECT_DOUBLE_EQ(w.rate(0), 0.0);
}

TEST(SlidingWindowCounter, WeightsAccumulate) {
  SlidingWindowCounter w(kSecond);
  w.add(0, 2.5);
  w.add(0, 0.5);
  EXPECT_DOUBLE_EQ(w.count(0), 3.0);
}

TEST(SlidingWindowCounter, ClearEmpties) {
  SlidingWindowCounter w(kSecond);
  w.add(0);
  w.clear();
  EXPECT_DOUBLE_EQ(w.count(0), 0.0);
}

TEST(SlidingWindowCounter, ManyEvictionsNoDrift) {
  SlidingWindowCounter w(kSecond);
  for (int i = 0; i < 100000; ++i) w.add(i * kMillisecond, 0.1);
  // After everything expires the sum must be exactly zero.
  EXPECT_DOUBLE_EQ(w.count(200 * kSecond), 0.0);
}

TEST(SlidingWindowMean, MeanOfWindowContents) {
  SlidingWindowMean w(2 * kSecond);
  w.add(0, 10.0);
  w.add(kSecond, 20.0);
  EXPECT_DOUBLE_EQ(w.mean(kSecond), 15.0);
}

TEST(SlidingWindowMean, EvictionChangesMean) {
  SlidingWindowMean w(2 * kSecond);
  w.add(0, 10.0);
  w.add(kSecond, 20.0);
  EXPECT_DOUBLE_EQ(w.mean(5 * kSecond / 2), 20.0);
}

TEST(SlidingWindowMean, EmptyMeanIsZero) {
  SlidingWindowMean w(kSecond);
  EXPECT_DOUBLE_EQ(w.mean(0), 0.0);
  w.add(0, 5.0);
  EXPECT_DOUBLE_EQ(w.mean(10 * kSecond), 0.0);
}

TEST(SlidingWindowMean, SizeTracksWindow) {
  SlidingWindowMean w(kSecond);
  w.add(0, 1.0);
  w.add(kSecond / 2, 2.0);
  EXPECT_EQ(w.size(kSecond / 2), 2u);
  EXPECT_EQ(w.size(kSecond + kSecond / 4), 1u);
}

}  // namespace
}  // namespace ff
