#include "ff/util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ff/util/rng.h"

namespace ff {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, SampleVarianceUsesNMinusOne) {
  StreamingStats s;
  for (const double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng(3);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  StreamingStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(StreamingStats, NumericallyStableForLargeOffset) {
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(P2Quantile, SmallSampleExact) {
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_NEAR(q.value(), 2.0, 1e-12);
}

TEST(P2Quantile, MedianOfUniform) {
  Rng rng(5);
  P2Quantile q(0.5);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, P99OfUniform) {
  Rng rng(6);
  P2Quantile q(0.99);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.99, 0.01);
}

TEST(P2Quantile, P90OfExponential) {
  Rng rng(7);
  P2Quantile q(0.9);
  for (int i = 0; i < 200000; ++i) q.add(rng.exponential(1.0));
  // True p90 of Exp(1) is ln(10) ~= 2.3026.
  EXPECT_NEAR(q.value(), 2.3026, 0.1);
}

TEST(SampleQuantiles, ExactQuantiles) {
  SampleQuantiles s;
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 30.0);
}

TEST(SampleQuantiles, InterpolatesBetweenSamples) {
  SampleQuantiles s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleQuantiles, EmptyReturnsZero) {
  const SampleQuantiles s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleQuantiles, AddAfterQueryResorts) {
  SampleQuantiles s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.add(42.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 30; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.add(1.0);
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.3);
  e.add(5.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(MeanCiOverloads, StreamingStatsMatchesVectorForm) {
  const std::vector<double> samples{10.0, 12.0, 14.0, 9.0, 11.0};
  StreamingStats s;
  for (const double v : samples) s.add(v);

  const MeanCi from_vector = mean_ci(samples);
  const MeanCi from_stats = mean_ci(s);
  EXPECT_EQ(from_stats.n, from_vector.n);
  EXPECT_DOUBLE_EQ(from_stats.mean, from_vector.mean);
  EXPECT_DOUBLE_EQ(from_stats.half_width, from_vector.half_width);
}

TEST(MeanCiOverloads, StreamingStatsEdgeCases) {
  StreamingStats empty;
  EXPECT_EQ(mean_ci(empty).n, 0u);
  EXPECT_DOUBLE_EQ(mean_ci(empty).half_width, 0.0);

  StreamingStats one;
  one.add(5.0);
  const MeanCi single = mean_ci(one);
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.half_width, 0.0);

  // A custom z widens the interval proportionally.
  StreamingStats two;
  two.add(1.0);
  two.add(3.0);
  EXPECT_DOUBLE_EQ(mean_ci(two, 2.0).half_width,
                   2.0 * mean_ci(two, 1.0).half_width);
}

TEST(StudentT, MatchesTheConventionalTable) {
  EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
  EXPECT_DOUBLE_EQ(student_t_975(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_975(4), 2.776);
  EXPECT_DOUBLE_EQ(student_t_975(9), 2.262);
  EXPECT_DOUBLE_EQ(student_t_975(30), 2.042);
  // Above the table: monotone decreasing toward the normal z.
  EXPECT_LT(student_t_975(31), student_t_975(30));
  EXPECT_NEAR(student_t_975(60), 2.000, 0.005);
  EXPECT_NEAR(student_t_975(120), 1.980, 0.005);
  EXPECT_NEAR(student_t_975(100000), 1.960, 1e-3);
}

TEST(MeanCi, DefaultsToStudentTForSmallSamples) {
  // n = 3, s = 2: half-width must be t(2) * s / sqrt(3), not 1.96-based.
  const std::vector<double> samples{10.0, 12.0, 14.0};
  const MeanCi ci = mean_ci(samples);
  const double expect = 4.303 * 2.0 / std::sqrt(3.0);
  EXPECT_DOUBLE_EQ(ci.mean, 12.0);
  EXPECT_DOUBLE_EQ(ci.half_width, expect);
  // Regression: the old normal interval was systematically narrow.
  EXPECT_GT(ci.half_width, 1.96 * 2.0 / std::sqrt(3.0));
}

TEST(MeanCi, TypicalReplicateCountsUseTheRightCriticalValue) {
  // The sweep engine's common replicate counts.
  for (const std::size_t n : {2u, 5u, 10u}) {
    std::vector<double> samples;
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(static_cast<double>(i));
    }
    StreamingStats s;
    for (const double v : samples) s.add(v);
    const double sd = std::sqrt(s.sample_variance());
    const MeanCi ci = mean_ci(samples);
    EXPECT_DOUBLE_EQ(ci.half_width, student_t_975(n - 1) * sd /
                                        std::sqrt(static_cast<double>(n)))
        << n;
  }
}

TEST(P2QuantileDegenerate, EmptyReturnsZero) {
  const P2Quantile q(0.9);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2QuantileDegenerate, ConstantStreamIsExactAtEveryLength) {
  // A constant stream makes every marker height equal, so the parabolic
  // update's divisions by marker gaps must not produce NaN or drift.
  for (const int n : {1, 2, 4, 5, 6, 100, 10000}) {
    P2Quantile q(0.99);
    for (int i = 0; i < n; ++i) q.add(7.25);
    EXPECT_DOUBLE_EQ(q.value(), 7.25) << "n=" << n;
    EXPECT_EQ(q.count(), static_cast<std::size_t>(n));
  }
}

TEST(P2QuantileDegenerate, SmallSamplePathIsExact) {
  // n < 5 takes the exact sorted-sample path, interpolating between order
  // statistics; verify each length below the marker threshold.
  P2Quantile q(0.5);
  q.add(9.0);
  EXPECT_DOUBLE_EQ(q.value(), 9.0);  // n=1
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // n=2: midpoint
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // n=3: middle order statistic
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 4.0);  // n=4: between 3 and 5

  P2Quantile p90(0.9);
  p90.add(0.0);
  p90.add(10.0);
  EXPECT_DOUBLE_EQ(p90.value(), 9.0);  // 0.9 * (n-1) between the two
}

TEST(P2QuantileDegenerate, DuplicateHeightsDoNotPoisonMarkers) {
  // Long runs of duplicates collapse adjacent marker heights; updates
  // must fall back to linear interpolation instead of dividing by zero.
  P2Quantile q(0.5);
  for (int i = 0; i < 1000; ++i) q.add(5.0);
  for (int i = 0; i < 1000; ++i) q.add(10.0);
  const double v = q.value();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 5.0);
  EXPECT_LE(v, 10.0);

  // Two-valued stream with a 9:1 ratio: the median must sit on the
  // dominant value.
  P2Quantile heavy(0.5);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    heavy.add(rng.uniform() < 0.9 ? 1.0 : 2.0);
  }
  EXPECT_NEAR(heavy.value(), 1.0, 0.05);
}

TEST(StreamingStatsProperty, MergeIsAssociativeAndOrderInsensitive) {
  // (a . b) . c == a . (b . c) and both match streaming the
  // concatenation, for random partitions of a random stream.
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    StreamingStats a, b, c, whole;
    const int n = 1 + static_cast<int>(rng.uniform() * 300);
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal(0.0, 10.0);
      whole.add(v);
      const double u = rng.uniform();
      (u < 0.34 ? a : (u < 0.67 ? b : c)).add(v);
    }
    StreamingStats left_first = a;   // (a . b) . c
    left_first.merge(b);
    left_first.merge(c);
    StreamingStats right_first = b;  // a . (b . c)
    right_first.merge(c);
    StreamingStats right_total = a;
    right_total.merge(right_first);

    EXPECT_EQ(left_first.count(), whole.count());
    EXPECT_EQ(right_total.count(), whole.count());
    EXPECT_NEAR(left_first.mean(), right_total.mean(), 1e-9);
    EXPECT_NEAR(left_first.variance(), right_total.variance(), 1e-7);
    EXPECT_NEAR(left_first.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left_first.variance(), whole.variance(), 1e-7);
    EXPECT_DOUBLE_EQ(left_first.min(), whole.min());
    EXPECT_DOUBLE_EQ(left_first.max(), whole.max());
    EXPECT_DOUBLE_EQ(right_total.min(), whole.min());
    EXPECT_DOUBLE_EQ(right_total.max(), whole.max());
  }
}

// Property sweep: P2 approximates exact quantiles across distributions and
// quantile levels.
class P2AccuracySweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(P2AccuracySweep, TracksExactQuantile) {
  const double q = std::get<0>(GetParam());
  const int dist = std::get<1>(GetParam());
  Rng rng(100 + dist);
  P2Quantile p2(q);
  std::vector<double> all;
  const int n = 50000;
  all.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v = 0;
    switch (dist) {
      case 0: v = rng.uniform(); break;
      case 1: v = rng.normal(5.0, 2.0); break;
      case 2: v = rng.exponential(3.0); break;
    }
    p2.add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(q * (n - 1))];
  const double spread = all.back() - all.front();
  EXPECT_NEAR(p2.value(), exact, 0.02 * spread)
      << "q=" << q << " dist=" << dist;
}

INSTANTIATE_TEST_SUITE_P(
    QuantilesAndDistributions, P2AccuracySweep,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9, 0.99),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace ff
