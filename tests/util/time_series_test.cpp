#include "ff/util/time_series.h"

#include <gtest/gtest.h>

namespace ff {
namespace {

TEST(TimeSeries, RecordAndAccess) {
  TimeSeries s("P");
  s.record(0, 1.0);
  s.record(kSecond, 2.0);
  EXPECT_EQ(s.name(), "P");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(1).time, kSecond);
  EXPECT_DOUBLE_EQ(s.at(1).value, 2.0);
}

TEST(TimeSeries, StatsBetweenHalfOpenWindow) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) s.record(i * kSecond, i);
  const auto st = s.stats_between(2 * kSecond, 5 * kSecond);
  EXPECT_EQ(st.count(), 3u);  // t=2,3,4
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
}

TEST(TimeSeries, MeanBetweenEmptyWindowIsZero) {
  TimeSeries s;
  s.record(0, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_between(10 * kSecond, 20 * kSecond), 0.0);
}

TEST(TimeSeries, StatsWholeSeries) {
  TimeSeries s;
  s.record(0, 1.0);
  s.record(1, 3.0);
  EXPECT_DOUBLE_EQ(s.stats().mean(), 2.0);
}

TEST(TimeSeries, ResampleBucketMeans) {
  TimeSeries s;
  s.record(0, 1.0);
  s.record(kSecond / 2, 3.0);        // bucket 0: mean 2
  s.record(kSecond, 10.0);           // bucket 1: 10
  s.record(3 * kSecond, 20.0);       // bucket 3: 20; bucket 2 repeats 10
  const TimeSeries r = s.resample(kSecond);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.at(0).value, 2.0);
  EXPECT_DOUBLE_EQ(r.at(1).value, 10.0);
  EXPECT_DOUBLE_EQ(r.at(2).value, 10.0);  // empty bucket repeats
  EXPECT_DOUBLE_EQ(r.at(3).value, 20.0);
}

TEST(TimeSeries, ResampleEmptyOrBadBucket) {
  TimeSeries s;
  EXPECT_TRUE(s.resample(kSecond).empty());
  s.record(0, 1.0);
  EXPECT_TRUE(s.resample(0).empty());
}

TEST(TimeSeries, MaxStepAndTotalVariation) {
  TimeSeries s;
  s.record(0, 0.0);
  s.record(1, 5.0);
  s.record(2, 3.0);
  s.record(3, 3.0);
  EXPECT_DOUBLE_EQ(s.max_step(), 5.0);
  EXPECT_DOUBLE_EQ(s.total_variation(), 7.0);
}

TEST(TimeSeries, MaxStepSinglePointIsZero) {
  TimeSeries s;
  s.record(0, 42.0);
  EXPECT_DOUBLE_EQ(s.max_step(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_variation(), 0.0);
}

TEST(SeriesBundle, CreatesOnFirstUse) {
  SeriesBundle b;
  EXPECT_EQ(b.find("P"), nullptr);
  b.series("P").record(0, 1.0);
  ASSERT_NE(b.find("P"), nullptr);
  EXPECT_EQ(b.find("P")->size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(SeriesBundle, ReturnsSameSeriesForSameName) {
  SeriesBundle b;
  b.series("T").record(0, 1.0);
  b.series("T").record(1, 2.0);
  EXPECT_EQ(b.find("T")->size(), 2u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(SeriesBundle, NamesInInsertionOrder) {
  SeriesBundle b;
  b.series("P");
  b.series("T");
  b.series("Po");
  const auto names = b.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "P");
  EXPECT_EQ(names[2], "Po");
}

}  // namespace
}  // namespace ff
