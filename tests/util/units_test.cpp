#include "ff/util/units.h"

#include <gtest/gtest.h>

namespace ff {
namespace {

TEST(Units, ChronoConversion) {
  EXPECT_EQ(to_sim(std::chrono::milliseconds(250)), 250 * kMillisecond);
  EXPECT_EQ(to_sim(std::chrono::seconds(2)), 2 * kSecond);
}

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(seconds_to_sim(1.5), 3 * kSecond / 2);
  EXPECT_DOUBLE_EQ(sim_to_seconds(seconds_to_sim(12.25)), 12.25);
}

TEST(Units, RatePeriod) {
  EXPECT_EQ(Rate{30.0}.period(), 33333 + 0);  // 1e6/30 rounded
  EXPECT_EQ(Rate{1.0}.period(), kSecond);
  // Zero rate: effectively never.
  EXPECT_GT(Rate{0.0}.period(), 1000LL * 365 * 24 * 3600 * kSecond / 1000);
}

TEST(Units, BandwidthSerialization) {
  const Bandwidth bw = Bandwidth::mbps(8.0);  // 1 byte per microsecond
  EXPECT_EQ(bw.serialization_time(Bytes{1000}), 1000);
  EXPECT_EQ(Bandwidth::kbps(8.0).serialization_time(Bytes{1}), 1000);
}

TEST(Units, ZeroBandwidthNeverCompletes) {
  const Bandwidth bw{0.0};
  EXPECT_GT(bw.serialization_time(Bytes{1}),
            1000LL * 365 * 24 * 3600 * kSecond / 1000);
}

TEST(Units, BytesAddition) {
  EXPECT_EQ((Bytes{3} + Bytes{4}).count, 7);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Rate{1.0}, Rate{2.0});
  EXPECT_LT(Bytes{1}, Bytes{2});
  EXPECT_LT(Bandwidth::kbps(1), Bandwidth::mbps(1));
}

}  // namespace
}  // namespace ff
