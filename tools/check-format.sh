#!/usr/bin/env bash
# Format gate for first-party C++ files. Two layers:
#
#   1. Mechanical checks (always run, no external tools): 80-column limit
#      (counted in decoded characters, so UTF-8 glyphs in string literals
#      don't trip it), no tabs, no trailing whitespace, newline at EOF.
#   2. Full .clang-format conformance (runs only when clang-format is on
#      PATH; SKIP otherwise, hard failure when FF_TIDY_STRICT=1).
#
# Usage:
#   tools/check-format.sh          # check only (CI mode)
#   tools/check-format.sh --fix    # clang-format -i (requires clang-format)

set -euo pipefail

cd "$(dirname "$0")/.."

MODE="check"
[[ "${1:-}" == "--fix" ]] && MODE="fix"

mapfile -t FILES < <(find src tests bench examples \
  \( -name '*.h' -o -name '*.cpp' \) -type f | sort)

FMT_BIN="${CLANG_FORMAT:-clang-format}"
HAVE_FMT=0
command -v "$FMT_BIN" >/dev/null 2>&1 && HAVE_FMT=1

if [[ "$MODE" == "fix" ]]; then
  if [[ $HAVE_FMT -ne 1 ]]; then
    echo "check-format: FATAL: --fix needs '$FMT_BIN' on PATH" >&2
    exit 2
  fi
  "$FMT_BIN" -i --style=file "${FILES[@]}"
  echo "check-format: reformatted ${#FILES[@]} files"
  exit 0
fi

# Layer 1: mechanical checks, authoritative on every machine.
if ! python3 - "${FILES[@]}" <<'PY'
import sys

failed = 0
for path in sys.argv[1:]:
    with open(path, "rb") as f:
        raw = f.read()
    if raw and not raw.endswith(b"\n"):
        print(f"check-format: {path}: missing newline at EOF", file=sys.stderr)
        failed = 1
    text = raw.decode("utf-8")
    for i, line in enumerate(text.splitlines(), 1):
        if len(line) > 80:
            print(f"check-format: {path}:{i}: {len(line)} columns (limit 80)",
                  file=sys.stderr)
            failed = 1
        if "\t" in line:
            print(f"check-format: {path}:{i}: tab character", file=sys.stderr)
            failed = 1
        if line != line.rstrip():
            print(f"check-format: {path}:{i}: trailing whitespace",
                  file=sys.stderr)
            failed = 1
sys.exit(failed)
PY
then
  echo "check-format: FAILED mechanical checks" >&2
  exit 1
fi

# Layer 2: full clang-format conformance, when the tool exists.
if [[ $HAVE_FMT -ne 1 ]]; then
  if [[ "${FF_TIDY_STRICT:-0}" == "1" ]]; then
    echo "check-format: FATAL: '$FMT_BIN' not found and FF_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "check-format: OK (mechanical only; '$FMT_BIN' not on PATH)" >&2
  exit 0
fi

FAILED=0
for f in "${FILES[@]}"; do
  if ! "$FMT_BIN" --style=file --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "check-format: NEEDS FORMAT: $f" >&2
    FAILED=1
  fi
done

if [[ $FAILED -ne 0 ]]; then
  echo "check-format: FAILED: run tools/check-format.sh --fix" >&2
  exit 1
fi
echo "check-format: OK (${#FILES[@]} files)"
