#!/usr/bin/env bash
# Clang thread-safety gate: compiles the tree with clang's static
# thread-safety analysis promoted to an error, so every FF_GUARDED_BY /
# FF_REQUIRES / FF_ACQUIRE annotation (ff/util/thread_annotations.h) is
# checked against actual lock usage. ff-lint enforces that the
# annotations exist; this gate enforces that they are true.
#
# Usage:
#   tools/check-thread-safety.sh [build-dir]   (default: build-tsa)
#
# When clang++ is not on PATH (e.g. the gcc-only dev image) the gate is
# SKIPPED with exit 0 so the full local pipeline still runs; CI installs
# clang and sets FF_TIDY_STRICT=1, which turns the missing-tool skip
# into a hard failure. Override the compiler with FF_CLANGXX.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsa}"

CLANGXX="${FF_CLANGXX:-clang++}"
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  if [[ "${FF_TIDY_STRICT:-0}" == "1" ]]; then
    echo "check-thread-safety: FATAL: '$CLANGXX' not found and FF_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "check-thread-safety: SKIPPED: '$CLANGXX' not found on PATH (set FF_CLANGXX or install clang)." >&2
  exit 0
fi

GEN_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GEN_ARGS=(-G Ninja)
fi
if command -v ccache >/dev/null 2>&1; then
  GEN_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Tests and benches depend on gtest/benchmark, which the analysis job
# does not install; the annotated surface is src/ (plus the examples
# that drive it), which 'all' covers in this configuration.
cmake -B "$BUILD_DIR" -S . "${GEN_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" \
  -DFF_BUILD_TESTS=OFF \
  -DFF_BUILD_BENCH=OFF

JOBS="$(nproc 2>/dev/null || echo 4)"
if ! cmake --build "$BUILD_DIR" -j "$JOBS"; then
  echo "check-thread-safety: FAILED: fix the annotations or the locking above" >&2
  exit 1
fi
echo "check-thread-safety: OK"
