#!/usr/bin/env python3
"""Determinism linter for the FrameFeedback simulation kernel.

The reproduction's headline claim is bit-identical deterministic replay of
the paper's control loop (tests/core/determinism_test.cpp pins a golden
(time, sequence) fingerprint). That property dies silently when simulation
code reads ambient state: wall clocks, process entropy, or address-space
layout (pointer-keyed hash containers whose iteration order feeds the
scheduler). This linter bans those sources inside the deterministic core
— src/{sim,net,control,core,device,server,rt} — with an explicit inline
escape hatch for the few legitimate uses:

    // ff-lint: allow(wall-clock) <reason>

on the offending line or the line directly above it.

Rules
-----
  wall-clock        std::chrono::{system,steady,high_resolution}_clock,
                    clock_gettime, gettimeofday. Sim code must derive time
                    from Simulator::now() only. (rt/realtime.cpp pacing is
                    the canonical allow() site.)
  ambient-entropy   std::random_device, rand()/srand(), time(NULL/0/...).
                    All randomness must flow from the seeded ff::Rng.
  unordered-pointer-key
                    unordered_map/unordered_set keyed by a pointer type:
                    iteration order depends on ASLR, so any traversal that
                    feeds scheduling decisions replays differently.
  unordered-iteration
                    range-for over an unordered container declared in the
                    same file, inside scheduling paths (src/sim, src/server,
                    src/device): iteration order is unspecified and must not
                    reach the event queue. Keyed lookups are fine.
  raw-allocation    direct `new`/`malloc`/`::operator new` in event-dispatch
                    code (src/sim): the kernel's hot path is allocation-free
                    by design (tests/sim/allocation_test.cpp enforces it);
                    new allocation sites need an explicit allow() with a
                    rationale.

Usage
-----
  tools/determinism_lint.py              # lint the repo (exit 1 on findings)
  tools/determinism_lint.py --root DIR   # lint an alternate tree
  tools/determinism_lint.py --self-test  # verify the linter catches seeded
                                         # violations in generated fixtures
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# Directories (relative to repo root) covered by each rule.
DETERMINISTIC_DIRS = (
    "src/sim",
    "src/net",
    "src/control",
    "src/core",
    "src/device",
    "src/server",
    "src/rt",
    "src/sweep",
)
SCHEDULING_DIRS = ("src/sim", "src/server", "src/device")
DISPATCH_DIRS = ("src/sim",)

ALLOW_RE = re.compile(r"//\s*ff-lint:\s*allow\(([a-z0-9-]+)\)")

# Each rule: (name, regex, dirs, message). Regexes run on comment- and
# string-stripped lines so prose mentioning e.g. steady_clock can't trip it.
RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:std::chrono::)?(?:system_clock|steady_clock|"
            r"high_resolution_clock)\b|\bclock_gettime\s*\(|\bgettimeofday\s*\("
        ),
        DETERMINISTIC_DIRS,
        "wall-clock read in deterministic code; use Simulator::now()",
    ),
    (
        "ambient-entropy",
        re.compile(
            r"\bstd::random_device\b|\brandom_device\s*\{|\bs?rand\s*\(|"
            r"(?:^|[^\w.>:])time\s*\(\s*(?:NULL|nullptr|0|&)"
        ),
        DETERMINISTIC_DIRS,
        "ambient entropy source; use the seeded ff::Rng",
    ),
    (
        "unordered-pointer-key",
        re.compile(r"\bunordered_(?:map|set)\s*<[^,>]*\*"),
        DETERMINISTIC_DIRS,
        "pointer-keyed hash container: iteration order follows ASLR",
    ),
    (
        "raw-allocation",
        # `new Type` and `::operator new(` allocate; placement `new (addr)`
        # does not and is excluded by requiring an identifier after `new`.
        re.compile(r"\bnew\s+[A-Za-z_]|\bmalloc\s*\(|::operator new\s*\("),
        DISPATCH_DIRS,
        "direct allocation in event-dispatch code; the kernel hot path is "
        "allocation-free (see tests/sim/allocation_test.cpp)",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<.*>\s*(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:this->)?(\w+)\s*\)")


def strip_code(line: str) -> str:
    """Removes // comments, string and char literals (keeps structure)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append("<lit>")
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """allow() directives on line idx or in the contiguous // comment block
    directly above it (multi-line rationales are encouraged)."""
    allows = set(ALLOW_RE.findall(lines[idx]))
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        allows |= set(ALLOW_RE.findall(lines[j]))
        j -= 1
    return allows


def in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel == d or rel.startswith(d + "/") or rel.startswith(d + os.sep)
               for d in dirs)


def lint_file(root: str, rel: str) -> list[tuple[str, int, str, str]]:
    """Returns (file, line_number, rule, message) findings for one file."""
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"determinism-lint: cannot read {rel}: {e}", file=sys.stderr)
        return []

    stripped = [strip_code(l) for l in lines]
    findings = []

    for name, pattern, dirs, message in RULES:
        if not in_dirs(rel, dirs):
            continue
        for i, code in enumerate(stripped):
            if pattern.search(code) and name not in allowed_rules(lines, i):
                findings.append((rel, i + 1, name, message))

    # unordered-iteration needs file-level state: collect container names
    # declared in this file, then flag range-fors over them.
    if in_dirs(rel, SCHEDULING_DIRS):
        unordered_names = set()
        for code in stripped:
            m = UNORDERED_DECL_RE.search(code)
            if m:
                unordered_names.add(m.group(1))
        if unordered_names:
            for i, code in enumerate(stripped):
                m = RANGE_FOR_RE.search(code)
                if (m and m.group(1) in unordered_names
                        and "unordered-iteration" not in allowed_rules(lines, i)):
                    findings.append((
                        rel, i + 1, "unordered-iteration",
                        f"range-for over unordered container '{m.group(1)}': "
                        "iteration order is unspecified and must not feed "
                        "scheduling decisions",
                    ))
    return findings


def lint_tree(root: str) -> list[tuple[str, int, str, str]]:
    findings = []
    for d in DETERMINISTIC_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith((".h", ".cpp", ".hpp", ".cc")):
                    rel = os.path.relpath(os.path.join(dirpath, fn), root)
                    findings.extend(lint_file(root, rel))
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation per rule (plus allow()-suppressed twins and
# known false-positive shapes) into a scratch tree and check the verdicts.

SELF_TEST_FIXTURES = {
    # Seeded wall-clock violation the acceptance criteria call out.
    "src/sim/bad_clock.cpp": (
        "#include <chrono>\n"
        "double wall_now() {\n"
        "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
        "}\n"
    ),
    "src/net/bad_entropy.cpp": (
        "#include <cstdlib>\n"
        "#include <ctime>\n"
        "int jitter() { return std::rand(); }\n"
        "long stamp() { return time(nullptr); }\n"
        "unsigned seed() { std::random_device rd; return rd(); }\n"
    ),
    "src/server/bad_unordered.cpp": (
        "#include <unordered_map>\n"
        "struct Flow;\n"
        "std::unordered_map<Flow*, int> by_flow_;\n"
        "std::unordered_map<int, int> queue_depth_;\n"
        "int drain() {\n"
        "  int total = 0;\n"
        "  for (auto& kv : queue_depth_) total += kv.second;\n"
        "  return total;\n"
        "}\n"
    ),
    "src/sim/bad_alloc.cpp": (
        "struct Event { int id; };\n"
        "Event* dispatch() { return new Event{1}; }\n"
    ),
    # allow() escape hatch: none of these may be reported.
    "src/rt/good_allowed.cpp": (
        "#include <chrono>\n"
        "double pace() {\n"
        "  // ff-lint: allow(wall-clock) realtime pacing measures wall time\n"
        "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
        "}\n"
    ),
    # False-positive shapes: comments, strings, member initializers named\n
    # `time`, placement new, and keyed (non-iterating) unordered lookups.
    "src/core/good_clean.cpp": (
        "// steady_clock is banned here; this comment must not trip the lint\n"
        "#include <new>\n"
        "#include <unordered_map>\n"
        "const char* kDoc = \"std::rand() and malloc() are banned\";\n"
        "struct Stamp { double time; explicit Stamp(double t) : time(t) {} };\n"
        "std::unordered_map<int, int> table_;\n"
        "int lookup(int k) { return table_.at(k); }\n"
        "void* emplace(void* slot) { return ::new (slot) Stamp(0.0); }\n"
    ),
}

EXPECTED = {
    ("src/sim/bad_clock.cpp", "wall-clock"),
    ("src/net/bad_entropy.cpp", "ambient-entropy"),
    ("src/server/bad_unordered.cpp", "unordered-pointer-key"),
    ("src/server/bad_unordered.cpp", "unordered-iteration"),
    ("src/sim/bad_alloc.cpp", "raw-allocation"),
}


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="fflint-selftest-") as root:
        for rel, content in SELF_TEST_FIXTURES.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)

        findings = lint_tree(root)
        got = {(f.replace(os.sep, "/"), rule) for f, _, rule, _ in findings}

        ok = True
        for want in sorted(EXPECTED):
            if want in got:
                print(f"self-test: PASS caught {want[1]} in {want[0]}")
            else:
                print(f"self-test: FAIL missed {want[1]} in {want[0]}")
                ok = False
        for extra in sorted(got - EXPECTED):
            print(f"self-test: FAIL false positive {extra[1]} in {extra[0]}")
            ok = False

        print(f"self-test: {'OK' if ok else 'FAILED'}")
        return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."))
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against seeded fixture violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(os.path.abspath(args.root))
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"determinism-lint: FAILED ({len(findings)} finding(s)); "
              "fix or annotate with '// ff-lint: allow(<rule>) <reason>'",
              file=sys.stderr)
        return 1
    print("determinism-lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
