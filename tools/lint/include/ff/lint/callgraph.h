#pragma once

// Call-graph determinism reachability for ff-lint. The directory-scoped
// determinism rules (rules.h) only see files under src/; helpers in
// bench/ and examples/ that execute *inside* simulator dispatch -- via a
// lambda handed to Simulator::schedule_in, a timer callback, a boundary
// post -- escaped them entirely. This pass closes that gap:
//
//   1. A cross-TU function index: every function definition in the tree
//      (token-level recognition: `qualified name (params) ... {`), with
//      its body token range.
//   2. Name-resolved call edges. A call site resolves to definitions of
//      the same name in the caller's file, the caller's module, or any
//      module in the caller's transitive ff-include closure -- never to
//      an unrelated file that happens to reuse the name.
//   3. Dispatch roots: Simulator::execute_next, EventQueue::visit_pop,
//      and every lambda passed to a scheduling call (schedule,
//      schedule_in, schedule_at, schedule_external, post, arm,
//      PeriodicTimer).
//
// Every function reachable from a root is scanned for the banned
// constructs (wall-clock, ambient-entropy, unordered-iteration --
// directly or through a macro expansion). Findings are reported only
// for files *outside* the directory scopes, where the per-file rules
// would not already have fired; rule name `determinism-reachability`.
//
// Escape hatch at the hazard site: allow(determinism-reachability) or
// allow(<base rule>) both silence it.

#include <cstddef>
#include <string>
#include <vector>

#include "ff/lint/rules.h"
#include "ff/lint/tree.h"

namespace ff::lint {

/// One function definition (or rooted lambda body) in the index.
struct FunctionDef {
  std::string name;       ///< unqualified, or "<lambda>"
  std::string qualified;  ///< "Class::name", "name", or "lambda@file:line"
  std::size_t file{0};    ///< index into tree.files()
  int line{1};
  std::size_t body_begin{0};  ///< token index of the body '{'
  std::size_t body_end{0};    ///< token index of the matching '}'
  bool dispatch_root{false};
};

/// Builds the function index for the whole tree (exposed for tests).
[[nodiscard]] std::vector<FunctionDef> index_functions(const SourceTree& tree);

/// Runs the determinism-reachability rule over the whole tree. allow()
/// directives are already applied; findings they dropped are appended
/// to `suppressed` (when non-null) for the stale-allow rule.
[[nodiscard]] std::vector<Finding> check_reachability(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

}  // namespace ff::lint
