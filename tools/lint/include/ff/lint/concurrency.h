#pragma once

// Concurrency rules for ff-lint: symbol-aware checks over the thread-
// safety annotation vocabulary of ff/util/thread_annotations.h. The
// lexer's token stream is parsed just far enough to recover class
// bodies, member declarations, method annotation lists and lexically
// nested lock-guard scopes -- no full C++ parse, but real brace/paren
// balancing, so multi-line declarations and nested classes are handled.
//
// Rules (scope: all of src/):
//   unguarded-shared-state  a class that owns a mutex has a member that
//                           is neither FF_GUARDED_BY/FF_PT_GUARDED_BY,
//                           a synchronization primitive, atomic, const,
//                           nor static
//   lock-order              the acquisition-order graph -- edges from
//                           FF_ACQUIRED_BEFORE/FF_ACQUIRED_AFTER
//                           declarations plus lexically nested guard
//                           scopes (lock_guard/unique_lock/scoped_lock/
//                           MutexLock) -- contains a cycle
//   annotation-parity       a capability has FF_ACQUIRE methods but no
//                           FF_RELEASE in the same class's declared
//                           API, or vice versa
//
// Escape hatch: `// ff-lint: allow(<rule>) <reason>` on the offending
// statement (any of its physical lines) or the comment block above it.

#include <string>
#include <vector>

#include "ff/lint/rules.h"
#include "ff/lint/tree.h"

namespace ff::lint {

/// One data-member declaration recovered from a class body.
struct MemberDecl {
  std::string name;
  int line{1};
  bool guarded{false};  ///< carries FF_GUARDED_BY / FF_PT_GUARDED_BY
  bool exempt{false};   ///< primitive, atomic, const, static, reference
  bool numeric{false};  ///< arithmetic type (incl. SimTime/SimDuration)
  bool counter{false};  ///< unsigned-integer type (conservation counter)
};

/// One FF_ACQUIRE / FF_RELEASE annotation on a method declaration.
struct MethodAnnotation {
  std::string capability;  ///< normalized argument ("<self>" when empty)
  int line{1};
};

/// One class (or struct) recovered from a file under src/.
struct ClassInfo {
  std::string name;  ///< "Outer::Inner" for nested classes
  std::string file;  ///< repo-relative path
  int line{1};
  bool scoped_capability{false};  ///< declared FF_SCOPED_CAPABILITY
  std::vector<std::string> mutex_members;  ///< capability-typed members
  std::vector<MemberDecl> members;
  std::vector<MethodAnnotation> acquires;
  std::vector<MethodAnnotation> releases;
  /// FF_ACQUIRED_BEFORE/AFTER edges as (held-first, held-second) pairs
  /// of qualified lock names, with the declaration line.
  std::vector<std::pair<std::pair<std::string, std::string>, int>> order;
};

/// Parses every class body in `file` (token-level; see file comment).
/// Exposed for tests.
[[nodiscard]] std::vector<ClassInfo> parse_classes(const SourceFile& file);

/// Runs unguarded-shared-state, lock-order and annotation-parity over
/// the whole tree. allow() directives are already applied; findings
/// they dropped are appended to `suppressed` (when non-null) for the
/// stale-allow rule.
[[nodiscard]] std::vector<Finding> check_concurrency(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

}  // namespace ff::lint
