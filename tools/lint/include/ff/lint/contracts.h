#pragma once

// Repo-contract rules for ff-lint: checks whose ground truth is this
// repository's own result-accounting conventions rather than general
// C++ hygiene.
//
//   fingerprint-completeness
//     Every numeric field of the aggregate result structs
//     (TelemetryTotals, DeviceResult, ServerResult, TenantResult,
//     ExperimentResult and the per-subsystem stats structs) must be
//     mixed into `sweep::result_fingerprint` or participate in the
//     inline conservation identities (TelemetryTotals::accounted/
//     conserved, ServerResult::conserved). A field that exists but is
//     never accounted is exactly the PR 6 `in_flight_at_end` bug class:
//     sweeps silently stop distinguishing runs that differ in it.
//     Escape hatch: a fingerprint-exempt allow() directive on the
//     field; the rationale text is mandatory.
//
//   nodiscard-contract
//     Every status-returning API in src/ (and tools/lint/) named
//     `try_*`, `submit`, `place`, `admit` or `evaluate_*` must be
//     declared [[nodiscard]], and a call to one of them whose result is
//     discarded (expression-statement position) is a finding unless a
//     visible same-name overload returns void. Cast to (void) to
//     discard deliberately.
//
// Both rules are inert when their anchors are absent from the scanned
// tree (no result_fingerprint definition, no curated structs), so
// fixture trees for other rules stay clean.

#include <set>
#include <string>
#include <vector>

#include "ff/lint/rules.h"
#include "ff/lint/tree.h"

namespace ff::lint {

/// Result-aggregate structs the fingerprint rule audits (exposed for
/// tests and the self-test).
[[nodiscard]] const std::set<std::string>& fingerprint_structs();

/// True for API names the nodiscard-contract rule curates.
[[nodiscard]] bool nodiscard_api_name(const std::string& name);

/// Runs fingerprint-completeness over the whole tree. allow()
/// directives are already applied; exemption uses and suppressed
/// findings are appended to `suppressed` (when non-null).
[[nodiscard]] std::vector<Finding> check_fingerprint_completeness(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

/// Runs nodiscard-contract (declaration discipline + discarded calls)
/// over the whole tree; same suppression contract.
[[nodiscard]] std::vector<Finding> check_nodiscard(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

}  // namespace ff::lint
