#pragma once

// Statement-level dataflow for ff-lint: the container-invalidation
// rule. Within each function body (located by the call-graph function
// index) the rule tracks bindings into growable containers --
// references (`auto& r = v.back()`), pointers (`auto* p = v.data()`,
// `T* p = &v[i]`), iterators (`auto it = v.begin()`), and range-for
// reference loop variables -- and flags any use of a binding after a
// mutating call (push_back/emplace_back/resize/erase/clear/insert/...)
// on the same container, which may have moved the element storage the
// binding points into. This is the mechanized form of the PR 1
// `EdgeServer::queues_` dangling-reference bug.
//
// The analysis is forward-linear over the token stream with
// brace-depth scoping: bindings die when their scope closes, re-taking
// a binding after the mutation clears its taint, and loop-back edges
// are not followed (a loop that mutates and then re-indexes through
// the container directly is clean by construction). Exemptions:
//   - deque: references and pointers survive push/emplace at either
//     end (iterators still do not);
//   - vector: a reserve() call sequenced before the binding was taken
//     exempts later push_back/emplace_back growth;
//   - a container-invalidation allow() directive with a reason.
//
// Container declarations come from the tree's vector/string/deque
// declaration index, which spans the transitive ff-include closure, so
// class members declared in headers are tracked in every member
// function that mutates them -- including through `this->`.

#include <vector>

#include "ff/lint/rules.h"
#include "ff/lint/tree.h"

namespace ff::lint {

/// Runs container-invalidation over every function body in src/ and
/// tools/lint/. allow() directives are already applied; findings they
/// dropped are appended to `suppressed` (when non-null).
[[nodiscard]] std::vector<Finding> check_container_invalidation(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

}  // namespace ff::lint
