#pragma once

// ff-lint driver: loads the source tree (from disk or from in-memory
// fixtures), runs the determinism and architecture rule families, and
// hosts the embedded self-test corpus that seeds at least one violation
// per rule -- including the macro-wrapped and cross-file cases the
// retired regex linter (tools/determinism_lint.py) provably missed.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ff/lint/rules.h"

namespace ff::lint {

struct LintResult {
  std::vector<Finding> findings;
  std::size_t files_scanned{0};
};

/// Lints an in-memory tree of (repo-relative path, content) pairs.
[[nodiscard]] LintResult lint_files(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Lints `<root>/src` plus, when present, `<root>/bench`,
/// `<root>/examples` (whose helpers the determinism-reachability rule
/// can trace into simulator dispatch) and `<root>/tools/lint` (the
/// linter lints itself). Throws std::runtime_error if the root has no
/// src/ directory.
[[nodiscard]] LintResult lint_tree(const std::string& root);

/// Writes the findings as one JSON document:
///   {"findings":[{"file":...,"line":N,"rule":...,"message":...},...],
///    "files_scanned":N}
/// Machine-readable companion to the human output; CI attaches it as an
/// artifact and feeds the text output to a GitHub problem matcher.
void write_findings_json(const LintResult& result, std::ostream& os);

/// Writes the findings as a SARIF 2.1.0 document (one run, one result
/// per finding, rule metadata from rule_registry()) so CI can upload
/// them to GitHub code scanning alongside the JSON artifact.
void write_findings_sarif(const LintResult& result, std::ostream& os);

/// Every rule id ff-lint can emit, in documentation order. The
/// self-test asserts each one is covered by at least one seeded corpus
/// finding; the SARIF writer publishes the same list as rule metadata.
[[nodiscard]] const std::vector<std::string>& rule_registry();

/// Embedded fixture corpus, reused by --self-test and tests/lint.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
self_test_corpus();

/// (file, rule) pairs the corpus must produce -- exactly.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
self_test_expected();

/// Runs the corpus through the linter and reports PASS/FAIL per expected
/// finding plus any false positives. Returns 0 on success.
int self_test(std::ostream& os);

}  // namespace ff::lint
