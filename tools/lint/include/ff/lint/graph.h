#pragma once

// Architecture rules for ff-lint: the include graph of src/ must match
// the module layering DAG documented in DESIGN.md (which mirrors the
// CMake link graph -- a module may include headers only of modules it
// transitively links), contain no include cycles among public headers,
// and every public header must be hygienic (a #pragma once guard and
// canonical "ff/<module>/<name>.h" include paths only, so the
// self-contained-header compile smoke and this rule agree on what a
// public header may depend on).
//
// Rules:
//   layering        include edge src/<a> -> ff/<b>/... not permitted by
//                   the layering DAG
//   include-cycle   cycle in the public-header include graph
//   header-hygiene  public header without #pragma once, or with a
//                   non-canonical (relative / angled-ff) include

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ff/lint/rules.h"
#include "ff/lint/tree.h"

namespace ff::lint {

/// Module layering DAG: for each module, the set of other modules whose
/// headers it may include (its own are always permitted). Transitive
/// closure of the CMake link graph; see DESIGN.md section 6.
[[nodiscard]] const std::map<std::string, std::set<std::string>>& layering();

/// Runs layering, include-cycle and header-hygiene over the whole tree.
/// allow() directives are already applied; returned findings are real.
/// Findings dropped by an allow() directive are appended to
/// `suppressed` (when non-null) for the stale-allow rule.
[[nodiscard]] std::vector<Finding> check_architecture(
    const SourceTree& tree, std::vector<Finding>* suppressed = nullptr);

}  // namespace ff::lint
