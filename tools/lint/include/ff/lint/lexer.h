#pragma once

// Token-level C++ lexer for ff-lint. Replaces the retired regex linter's
// line-oriented matching with a real scanner: comments (line and block),
// string/char literals (including encoding prefixes and raw strings),
// numeric literals with digit separators, and line splices are all
// recognized, so prose in comments or literals can never trip a rule and
// constructs split across physical lines cannot hide from one. The lexer
// also understands just enough of the preprocessor to feed the rest of
// the toolkit: #include directives (for the include graph), #define
// directives with their bodies lexed into tokens (for the macro table),
// and #pragma once (for the header hygiene rule).

#include <string>
#include <vector>

namespace ff::lint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords
  kNumber,      ///< numeric literal (text preserved)
  kString,      ///< any string literal, text collapsed to "<str>"
  kChar,        ///< any character literal, text collapsed to "<chr>"
  kPunct,       ///< one punctuator; "::" and "->" are single tokens
};

struct Token {
  TokKind kind{TokKind::kPunct};
  std::string text;
  int line{1};
};

/// One #include directive, as written.
struct IncludeDirective {
  std::string path;
  bool angled{false};
  int line{1};
};

/// One #define directive; the replacement list is lexed like code.
struct MacroDef {
  std::string name;
  bool function_like{false};
  std::vector<Token> body;
  int line{1};
};

/// One physical line's worth of comment text (leading // or /* markers
/// stripped; block comments are split per line). Rules that honor
/// `ff-lint:` control directives parse them from here, so directive
/// text inside string literals is never mistaken for a directive.
struct CommentLine {
  int line{1};
  std::string text;
};

/// Result of lexing one file. `tokens` is the translation unit's code
/// token stream with all preprocessor directives removed; directives
/// ff-lint cares about are surfaced in structured form alongside it.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<MacroDef> macros;
  std::vector<CommentLine> comments;
  bool pragma_once{false};
};

[[nodiscard]] LexedFile lex(const std::string& text);

}  // namespace ff::lint
