#pragma once

// Determinism rules for ff-lint, ported from the retired regex linter
// onto the token stream and strengthened with the two capabilities the
// regexes provably lacked: macros (a banned construct wrapped in an
// object- or function-like macro is flagged at every expansion site, by
// classifying each macro's fully-expanded replacement list) and
// cross-file visibility (unordered-container declarations recorded in
// headers make range-for iteration over them fire in any file that
// includes the header).
//
// Rules and scopes (directories are repo-relative):
//   wall-clock             src/{sim,net,control,core,device,server,rt,sweep}
//   ambient-entropy        same
//   unordered-pointer-key  same
//   unordered-iteration    src/{sim,server,device}  (scheduling paths)
//   raw-allocation         src/sim                  (event dispatch)
//
// Escape hatch: `// ff-lint: allow(<rule>) <reason>` on the offending
// line or the contiguous //-comment block directly above it.

#include <string>
#include <vector>

#include "ff/lint/tree.h"

namespace ff::lint {

struct Finding {
  std::string file;
  int line{1};
  std::string rule;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule;
  }
};

/// True if `rel` lies under any of the listed directories.
[[nodiscard]] bool in_dirs(const std::string& rel,
                           const std::vector<std::string>& dirs);

/// Directory scopes, exposed for the self-test and tests.
[[nodiscard]] const std::vector<std::string>& deterministic_dirs();
[[nodiscard]] const std::vector<std::string>& scheduling_dirs();
[[nodiscard]] const std::vector<std::string>& dispatch_dirs();

/// Runs every determinism rule over one file of `tree`, consulting the
/// tree for macro classification and cross-file container declarations.
/// allow() directives are already applied; returned findings are real.
/// Findings dropped by an allow() directive are appended to
/// `suppressed` (when non-null) so the driver's stale-allow rule can
/// tell live suppressions from dead ones.
[[nodiscard]] std::vector<Finding> check_determinism(
    const SourceTree& tree, const SourceFile& file,
    std::vector<Finding>* suppressed = nullptr);

/// Raw token-stream scan for the stateless determinism rules
/// (wall-clock, ambient-entropy, unordered-pointer-key,
/// raw-allocation). No scope filtering, no allow() handling; `file` in
/// the findings is empty. Building block for check_determinism and the
/// call-graph reachability rule, which applies it to function bodies
/// outside the directory scopes.
[[nodiscard]] std::vector<Finding> scan_determinism_tokens(
    const std::vector<Token>& toks);

/// Raw scan for range-for iteration over any container named in
/// `decls`; same contract as scan_determinism_tokens.
[[nodiscard]] std::vector<Finding> scan_unordered_iteration_tokens(
    const std::vector<Token>& toks, const std::set<std::string>& decls);

/// Rules whose patterns appear in the macro's replacement list after
/// expanding nested macros (depth-capped). Used to flag expansion sites.
[[nodiscard]] std::vector<std::string> macro_hazards(const SourceTree& tree,
                                                     const MacroDef& def);

}  // namespace ff::lint
