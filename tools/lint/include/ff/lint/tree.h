#pragma once

// Source tree model for ff-lint: every C++ file under src/ (and the
// linter's own tree under tools/lint/), lexed once, with its module
// identity, public-header key ("ff/<module>/<name>.h" for headers under
// the module's include/ root), raw lines, per-line comment text (the
// only place `// ff-lint: allow(<rule>)` directives are parsed from, so
// directive-shaped prose inside string literals is inert), and the
// cross-file indexes the rules consult: a macro table spanning the
// whole tree, the set of unordered-container declarations per file, and
// the map of growable-container declarations (vector/string/deque) the
// dataflow layer tracks for reference invalidation.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ff/lint/lexer.h"

namespace ff::lint {

struct SourceFile {
  std::string rel;         ///< repo-relative path, '/'-separated
  std::string module;      ///< "sim", "util", ... ("" outside a module)
  bool public_header{false};
  std::string header_key;  ///< "ff/<mod>/<name>.h" for public headers
  std::vector<std::string> lines;
  LexedFile lex;
  /// Comment text per physical line (concatenated when a line carries
  /// more than one comment).
  std::map<int, std::string> comments;
  /// Names declared in this file as unordered_{map,set} variables.
  std::set<std::string> unordered_decls;
  /// Names declared as growable containers, mapped to their kind:
  /// "vector", "string" (references invalidated by growth) or "deque"
  /// (references stable under push/emplace at either end).
  std::map<std::string, std::string> container_decls;
};

/// Module named by a path of the form src/<module>/...; the linter's
/// own sources under tools/lint/ form the "lint" module. "" otherwise.
[[nodiscard]] std::string module_of(const std::string& rel);

/// One `// ff-lint: allow(<rule>)` control directive, as parsed from
/// comment text. `has_rationale` records whether any prose follows the
/// closing parenthesis in the same comment — rules with a mandatory
/// rationale (fingerprint-exempt) reject bare directives.
struct AllowDirective {
  int line{1};
  std::string rule;
  bool has_rationale{false};
};

/// Every allow() directive in the file, in line order.
[[nodiscard]] std::vector<AllowDirective> allow_directives(
    const SourceFile& file);

/// Rules allowed on line `line` (1-based) by `// ff-lint: allow(<rule>)`
/// directives on that line or in the contiguous //-comment block
/// directly above it. Line-scoped primitive; rules should prefer
/// allowed_rules_for, which widens the scope to the whole statement.
[[nodiscard]] std::set<std::string> allowed_rules(const SourceFile& file,
                                                  int line);

/// First and last physical line of the statement containing `line`,
/// derived from the token stream (statement boundaries are `;` at paren
/// depth zero, `{`, and `}`). Lines without tokens map to themselves.
struct StatementExtent {
  int first{1};
  int last{1};
};
[[nodiscard]] StatementExtent statement_extent(const std::vector<Token>& toks,
                                               int line);

/// Rules allowed for a finding at `line`, with allow() scopes attached
/// to the whole containing statement: a directive anywhere on the
/// statement's physical lines, or in the contiguous //-comment block
/// directly above its first line, covers every finding the statement
/// produces. Supersedes per-line allowed_rules, which let multi-line
/// statements escape their own annotation.
[[nodiscard]] std::set<std::string> allowed_rules_for(const SourceFile& file,
                                                      int line);

/// True when a directive written on `directive_line` is in scope for a
/// finding at `finding_line`: on one of the finding's statement lines,
/// or in the contiguous //-comment block directly above the statement.
/// This is the exact inverse of allowed_rules_for's lookup; stale-allow
/// uses it to decide whether a directive suppressed anything.
[[nodiscard]] bool directive_covers(const SourceFile& file,
                                    int directive_line, int finding_line);

class SourceTree {
 public:
  /// Builds the tree from (repo-relative path, file content) pairs.
  explicit SourceTree(
      const std::vector<std::pair<std::string, std::string>>& files);

  [[nodiscard]] const std::vector<SourceFile>& files() const {
    return files_;
  }

  /// Resolves an include path ("ff/<mod>/<name>.h") to the file that
  /// provides it, or nullptr.
  [[nodiscard]] const SourceFile* resolve(const std::string& path) const;

  /// The macro with the given name, or nullptr. With multiple
  /// definitions the first one wins (redefinitions across the tree are
  /// assumed equivalent for linting purposes).
  [[nodiscard]] const MacroDef* macro(const std::string& name) const;

  /// Union of unordered-container declaration names visible to `file`:
  /// its own plus those of every header in its (transitive) ff include
  /// closure.
  [[nodiscard]] std::set<std::string> visible_unordered_decls(
      const SourceFile& file) const;

  /// Union of growable-container declarations (name -> kind) visible to
  /// `file` through the same closure; class members declared in headers
  /// become visible to every including TU.
  [[nodiscard]] std::map<std::string, std::string> visible_container_decls(
      const SourceFile& file) const;

 private:
  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t> by_header_key_;
  std::map<std::string, MacroDef> macros_;
};

}  // namespace ff::lint
