#include "ff/lint/callgraph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace ff::lint {
namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

/// Keywords that look like `name (...)` but never name a function.
bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
      "throw",  "assert", "noexcept", "alignas", "co_await", "co_return"};
  return kKw.count(s) > 0;
}

bool is_annotation_or_spec(const std::string& s) {
  return s.rfind("FF_", 0) == 0 || s == "noexcept" || s == "const" ||
         s == "override" || s == "final" || s == "mutable";
}

/// Calls that hand a callable to simulator dispatch: lambdas in their
/// argument lists run inside execute_next and are reachability roots.
bool is_scheduling_name(const std::string& s) {
  static const std::set<std::string> kNames = {
      "schedule",      "schedule_in", "schedule_at", "schedule_external",
      "post",          "arm",         "PeriodicTimer"};
  return kNames.count(s) > 0;
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open,
                        const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == opener) ++depth;
    if (toks[j].text == closer && --depth == 0) return j;
  }
  return toks.size() - 1;
}

/// Per-file function recognizer: a linear scan tracking statement
/// boundaries and brace scopes. On each '{' it classifies the statement
/// before it as a class head, a function definition header, or neither,
/// and maintains the class-context stack used to qualify inline methods.
class FunctionScanner {
 public:
  FunctionScanner(const SourceTree& tree, std::size_t file_index,
                  std::vector<FunctionDef>* out)
      : tree_(tree),
        file_(tree.files()[file_index]),
        file_index_(file_index),
        toks_(file_.lex.tokens),
        out_(out) {}

  void run() {
    int depth = 0;
    std::size_t stmt_start = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& s = toks_[i].text;
      if (s == "{") {
        classify_open(stmt_start, i, depth);
        ++depth;
        stmt_start = i + 1;
      } else if (s == "}") {
        --depth;
        while (!classes_.empty() && classes_.back().depth > depth) {
          classes_.pop_back();
        }
        stmt_start = i + 1;
      } else if (s == ";") {
        stmt_start = i + 1;
      }
    }
  }

 private:
  struct ClassCtx {
    int depth;
    std::string name;
  };

  void classify_open(std::size_t stmt_start, std::size_t open, int depth) {
    // Class head?
    std::string cls;
    bool in_class_head = false;
    int paren = 0;
    bool assign_before_paren = false;
    std::size_t first_paren = 0;       // token index of the first '('
    bool have_first_paren = false;
    for (std::size_t k = stmt_start; k < open; ++k) {
      const Token& t = toks_[k];
      if (t.text == "(") {
        if (paren == 0 && !have_first_paren) {
          first_paren = k;
          have_first_paren = true;
        }
        ++paren;
      }
      if (t.text == ")" && paren > 0) --paren;
      if (t.text == "=" && paren == 0 && !have_first_paren) {
        assign_before_paren = true;
      }
      if ((is_ident(t, "class") || is_ident(t, "struct")) &&
          !(k > 0 && is_ident(toks_[k - 1], "enum"))) {
        in_class_head = true;
        cls.clear();
        continue;
      }
      if (in_class_head && paren == 0) {
        if (t.text == ":") in_class_head = false;  // base clause
        else if (t.kind == TokKind::kIdentifier && t.text != "final" &&
                 !is_annotation_or_spec(t.text)) {
          cls = t.text;
        }
      }
    }
    if (!cls.empty()) {
      // Record the *inside* depth so the context pops exactly when the
      // class body's brace closes.
      classes_.push_back({depth + 1, cls});
      return;
    }
    if (paren > 0) return;  // '{' inside an argument list: a lambda body
    if (!have_first_paren || assign_before_paren) return;

    // Function header: name is the identifier before the first '(',
    // with an optional `Qual::` chain before it.
    if (first_paren == stmt_start) return;
    const Token& nm = toks_[first_paren - 1];
    if (nm.kind != TokKind::kIdentifier || is_control_keyword(nm.text) ||
        is_annotation_or_spec(nm.text)) {
      return;
    }
    std::string qual;
    for (std::size_t k = first_paren - 1; k >= stmt_start + 2; k -= 2) {
      if (toks_[k - 1].text != "::" ||
          toks_[k - 2].kind != TokKind::kIdentifier) {
        break;
      }
      qual = toks_[k - 2].text + (qual.empty() ? "" : "::") + qual;
      if (k < stmt_start + 4) break;
    }
    if (qual.empty() && !classes_.empty()) qual = classes_.back().name;

    FunctionDef def;
    def.name = nm.text;
    def.qualified = qual.empty() ? nm.text : qual + "::" + nm.text;
    def.file = file_index_;
    def.line = nm.line;
    def.body_begin = open;
    def.body_end = match_brace(toks_, open, "{", "}");
    out_->push_back(std::move(def));
  }

  const SourceTree& tree_;
  const SourceFile& file_;
  std::size_t file_index_;
  const std::vector<Token>& toks_;
  std::vector<FunctionDef>* out_;
  std::vector<ClassCtx> classes_;
};

/// Extracts lambdas passed to scheduling calls as synthetic dispatch
/// roots: anything inside `schedule*(...)`, `post(...)`, `arm(...)` or
/// a PeriodicTimer construction that looks like `[...](...) {...}`.
void extract_scheduled_lambdas(const SourceTree& tree,
                               std::size_t file_index,
                               std::vector<FunctionDef>* out) {
  const SourceFile& file = tree.files()[file_index];
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        !is_scheduling_name(toks[i].text)) {
      continue;
    }
    // Accept `name(`, `name var(` (declaration) and `name>(` (template
    // argument, e.g. make_unique<PeriodicTimer>(...)).
    std::size_t open = 0;
    for (std::size_t j = i + 1; j < toks.size() && j <= i + 3; ++j) {
      if (toks[j].text == "(") {
        open = j;
        break;
      }
      if (toks[j].kind != TokKind::kIdentifier && toks[j].text != ">") break;
    }
    if (open == 0) continue;
    const std::size_t close = match_brace(toks, open, "(", ")");
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks[j].text != "[") continue;
      // Lambda introducer: capture list, optional params/specifiers,
      // then the body. A '[' whose ']' is not followed by '(' / '{' /
      // a specifier is a subscript; skip it.
      const std::size_t cap_close = match_brace(toks, j, "[", "]");
      std::size_t k = cap_close + 1;
      if (k < close && toks[k].text == "(") {
        k = match_brace(toks, k, "(", ")") + 1;
      }
      while (k < close && (is_ident(toks[k], "mutable") ||
                           is_ident(toks[k], "noexcept") ||
                           toks[k].text == "->" ||
                           (toks[k].kind == TokKind::kIdentifier &&
                            toks[k - 1].text == "->") ||
                           toks[k].text == "::")) {
        ++k;
      }
      if (k >= close || toks[k].text != "{") {
        j = cap_close;
        continue;
      }
      const std::size_t body_end = match_brace(toks, k, "{", "}");
      FunctionDef def;
      def.name = "<lambda>";
      def.qualified = "lambda@" + file.rel + ":" +
                      std::to_string(toks[j].line) + " (passed to " +
                      toks[i].text + ")";
      def.file = file_index;
      def.line = toks[j].line;
      def.body_begin = k;
      def.body_end = body_end;
      def.dispatch_root = true;
      out->push_back(std::move(def));
      j = body_end;
    }
    i = open;
  }
}

/// Modules whose functions `file` may legitimately call: its own plus
/// every module providing a header in its transitive ff-include
/// closure.
std::set<std::string> visible_modules(const SourceTree& tree,
                                      const SourceFile& file) {
  std::set<std::string> modules;
  if (!file.module.empty()) modules.insert(file.module);
  std::set<std::string> seen;
  std::vector<const SourceFile*> work{&file};
  while (!work.empty()) {
    const SourceFile* cur = work.back();
    work.pop_back();
    for (const IncludeDirective& inc : cur->lex.includes) {
      if (!seen.insert(inc.path).second) continue;
      const SourceFile* next = tree.resolve(inc.path);
      if (next == nullptr) continue;
      if (!next->module.empty()) modules.insert(next->module);
      work.push_back(next);
    }
  }
  return modules;
}

struct Hazard {
  int line;
  std::string rule;     ///< base rule the construct violates
  std::string message;  ///< base rule message
};

/// Scans one function body for banned constructs that the directory
/// rules would not already have reported for this file.
std::vector<Hazard> body_hazards(const SourceTree& tree,
                                 const SourceFile& file,
                                 const FunctionDef& fn) {
  std::vector<Hazard> out;
  const std::vector<Token> body(
      file.lex.tokens.begin() + static_cast<std::ptrdiff_t>(fn.body_begin),
      file.lex.tokens.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(fn.body_end + 1, file.lex.tokens.size())));

  if (!in_dirs(file.rel, deterministic_dirs())) {
    for (const Finding& f : scan_determinism_tokens(body)) {
      if (f.rule != "wall-clock" && f.rule != "ambient-entropy") continue;
      out.push_back({f.line, f.rule, f.message});
    }
    // Macro expansion sites inside the body.
    for (const Token& t : body) {
      if (t.kind != TokKind::kIdentifier) continue;
      const MacroDef* def = tree.macro(t.text);
      if (def == nullptr) continue;
      for (const std::string& rule : macro_hazards(tree, *def)) {
        if (rule != "wall-clock" && rule != "ambient-entropy") continue;
        out.push_back({t.line, rule,
                       "expansion of macro '" + def->name +
                           "' contains a banned construct (" + rule + ")"});
      }
    }
  }
  if (!in_dirs(file.rel, scheduling_dirs())) {
    for (const Finding& f : scan_unordered_iteration_tokens(
             body, tree.visible_unordered_decls(file))) {
      out.push_back({f.line, f.rule, f.message});
    }
  }
  return out;
}

}  // namespace

std::vector<FunctionDef> index_functions(const SourceTree& tree) {
  std::vector<FunctionDef> out;
  for (std::size_t i = 0; i < tree.files().size(); ++i) {
    FunctionScanner(tree, i, &out).run();
    extract_scheduled_lambdas(tree, i, &out);
  }
  for (FunctionDef& def : out) {
    if (def.qualified == "Simulator::execute_next" ||
        def.qualified == "EventQueue::visit_pop") {
      def.dispatch_root = true;
    }
  }
  return out;
}

std::vector<Finding> check_reachability(const SourceTree& tree,
                                        std::vector<Finding>* suppressed) {
  const std::vector<FunctionDef> funcs = index_functions(tree);

  // Name index for call resolution.
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    by_name[funcs[i].name].push_back(i);
  }
  std::vector<std::set<std::string>> file_modules;
  file_modules.reserve(tree.files().size());
  for (const SourceFile& f : tree.files()) {
    file_modules.push_back(visible_modules(tree, f));
  }

  // Call edges: identifiers followed by '(' inside each body, resolved
  // to same-file / same-module / included-module definitions.
  std::vector<std::vector<std::size_t>> edges(funcs.size());
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    const FunctionDef& fn = funcs[i];
    const SourceFile& file = tree.files()[fn.file];
    const std::vector<Token>& toks = file.lex.tokens;
    const std::set<std::string>& visible = file_modules[fn.file];
    for (std::size_t j = fn.body_begin; j < fn.body_end; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::kIdentifier || j + 1 >= toks.size() ||
          toks[j + 1].text != "(" || is_control_keyword(t.text)) {
        continue;
      }
      const auto it = by_name.find(t.text);
      if (it == by_name.end()) continue;
      for (const std::size_t target : it->second) {
        if (target == i) continue;
        const FunctionDef& callee = funcs[target];
        const SourceFile& callee_file = tree.files()[callee.file];
        const bool in_scope =
            callee.file == fn.file ||
            (!callee_file.module.empty() &&
             visible.count(callee_file.module) > 0);
        if (in_scope) edges[i].push_back(target);
      }
    }
  }

  // BFS from dispatch roots, recording one parent per function for the
  // reported chain.
  std::vector<std::size_t> parent(funcs.size(), funcs.size());
  std::vector<char> reached(funcs.size(), 0);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (funcs[i].dispatch_root) {
      reached[i] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    for (const std::size_t next : edges[cur]) {
      if (reached[next] != 0) continue;
      reached[next] = 1;
      parent[next] = cur;
      queue.push_back(next);
    }
  }

  std::vector<Finding> out;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (reached[i] == 0) continue;
    const FunctionDef& fn = funcs[i];
    const SourceFile& file = tree.files()[fn.file];
    const std::vector<Hazard> hazards = body_hazards(tree, file, fn);
    if (hazards.empty()) continue;

    // Chain from the root down to this function, for the message.
    std::vector<const std::string*> chain;
    for (std::size_t n = i; n < funcs.size(); n = parent[n]) {
      chain.push_back(&funcs[n].qualified);
      if (parent[n] >= funcs.size()) break;
    }
    std::reverse(chain.begin(), chain.end());
    std::string path;
    for (std::size_t n = 0; n < chain.size(); ++n) {
      if (n > 0) path += " -> ";
      path += *chain[n];
    }

    for (const Hazard& h : hazards) {
      Finding found{file.rel, h.line, "determinism-reachability",
                    h.message + " [" + h.rule +
                        " reachable from dispatch: " + path + "]"};
      const std::set<std::string> allows = allowed_rules_for(file, h.line);
      if (allows.count("determinism-reachability") > 0 ||
          allows.count(h.rule) > 0) {
        if (suppressed != nullptr) {
          // A directive naming either the reachability rule or the base
          // rule suppressed this; record both spellings as live.
          Finding base = found;
          base.rule = h.rule;
          suppressed->push_back(std::move(base));
          suppressed->push_back(std::move(found));
        }
        continue;
      }
      out.push_back(std::move(found));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
