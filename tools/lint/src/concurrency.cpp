#include "ff/lint/concurrency.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

namespace ff::lint {
namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

bool is_class_kw(const Token& t) {
  return is_ident(t, "class") || is_ident(t, "struct");
}

/// Annotation macros whose parenthesized arguments are attribute text,
/// not code: their '(' must not make a declaration look like a function.
bool is_annotation_macro(const std::string& s) {
  static const std::set<std::string> kMacros = {
      "FF_CAPABILITY",      "FF_SCOPED_CAPABILITY", "FF_GUARDED_BY",
      "FF_PT_GUARDED_BY",   "FF_ACQUIRED_BEFORE",   "FF_ACQUIRED_AFTER",
      "FF_REQUIRES",        "FF_ACQUIRE",           "FF_RELEASE",
      "FF_TRY_ACQUIRE",     "FF_EXCLUDES",          "FF_RETURN_CAPABILITY",
      "FF_THREAD_ANNOTATION"};
  return kMacros.count(s) > 0;
}

/// Type tokens that make a member exempt from unguarded-shared-state:
/// synchronization primitives guard themselves, atomics carry their own
/// ordering, and guard objects are stack-pattern types.
bool is_sync_type_token(const std::string& s) {
  if (s.rfind("atomic", 0) == 0) return true;              // atomic, atomic_*
  if (s.rfind("condition_variable", 0) == 0) return true;  // + _any
  static const std::set<std::string> kTypes = {
      "mutex",    "shared_mutex", "recursive_mutex",    "timed_mutex",
      "Mutex",    "CondVar",      "MutexLock",          "once_flag",
      "lock_guard", "unique_lock", "scoped_lock",       "counting_semaphore",
      "binary_semaphore", "barrier", "latch"};
  return kTypes.count(s) > 0;
}

/// Mutex-like type tokens: owning one of these makes a class subject to
/// the unguarded-shared-state rule, and names such a member a capability
/// other locks can order against.
bool is_mutex_type_token(const std::string& s) {
  static const std::set<std::string> kTypes = {
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex", "Mutex"};
  return kTypes.count(s) > 0;
}

/// Unsigned-integer type tokens: fields of these types in aggregate
/// result structs are conservation counters for fingerprint-completeness.
bool is_counter_type_token(const std::string& s) {
  static const std::set<std::string> kTypes = {
      "unsigned", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t",
      "uintptr_t"};
  return kTypes.count(s) > 0;
}

/// Arithmetic type tokens (the repo's sim-time aliases included):
/// fields of these types must be mixed into the result fingerprint.
bool is_numeric_type_token(const std::string& s) {
  if (is_counter_type_token(s)) return true;
  static const std::set<std::string> kTypes = {
      "double", "float", "int", "long", "short", "signed", "int8_t",
      "int16_t", "int32_t", "int64_t", "ptrdiff_t", "intptr_t", "SimTime",
      "SimDuration"};
  return kTypes.count(s) > 0;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == opener) ++depth;
    if (toks[j].text == closer && --depth == 0) return j;
  }
  return toks.size() - 1;
}

/// Joins the argument tokens of an annotation or guard constructor into
/// a normalized lock name: qualifier tokens are kept, value-category
/// noise (&, *, this->) is dropped. "" stays "" for the caller to map.
std::string normalize_lock_expr(const std::vector<const Token*>& expr) {
  std::string name;
  for (const Token* t : expr) {
    const std::string& s = t->text;
    if (s == "&" || s == "*" || s == "this" || s == "->" || s == ".") {
      continue;
    }
    name += s;
  }
  return name;
}

/// Splits the tokens between `open` ('(') and its match into top-level
/// comma-separated argument expressions.
std::vector<std::vector<const Token*>> split_args(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::vector<const Token*>> args;
  std::vector<const Token*> cur;
  int paren = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    const std::string& s = toks[j].text;
    if (s == "(") ++paren;
    if (s == ")") --paren;
    if (s == "," && paren == 0) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(&toks[j]);
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

/// Recursive-descent class parser over the token stream. Tracks just
/// enough structure (statement boundaries, balanced groups, ctor-init
/// lists) to classify each class-body statement as a nested class, a
/// function, or a member declaration.
class ClassParser {
 public:
  ClassParser(const SourceFile& file, std::vector<ClassInfo>* out)
      : file_(file), toks_(file.lex.tokens), out_(out) {}

  void run() {
    std::size_t i = 0;
    while (i < toks_.size()) i = maybe_class(i);
  }

 private:
  /// If `i` starts a class definition, parses it (and everything nested)
  /// and returns the index past it; otherwise returns i + 1.
  std::size_t maybe_class(std::size_t i) {
    if (!is_class_kw(toks_[i]) ||
        (i > 0 && is_ident(toks_[i - 1], "enum"))) {
      return i + 1;
    }
    // Head: everything to the opening '{' (definition) or ';' (forward
    // declaration / template parameter swallowed up to the next ';').
    std::string name;
    bool scoped = false;
    std::size_t j = i + 1;
    int paren = 0;
    for (; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.text == "(") ++paren;
      if (t.text == ")" && paren > 0) --paren;
      if (paren > 0) continue;
      if (t.text == ";") return j + 1;
      if (t.text == "{") break;
      if (t.text == ":" ) continue;  // base clause: name already captured
      if (is_ident(t, "FF_SCOPED_CAPABILITY")) scoped = true;
      if (t.kind == TokKind::kIdentifier && !is_class_kw(t) &&
          t.text != "final" && !is_annotation_macro(t.text) &&
          // Base-clause names come after ':'; stop capturing there.
          !seen_base_colon(i + 1, j)) {
        name = t.text;
      }
    }
    if (j >= toks_.size() || name.empty()) return j + 1;
    return parse_body(j, name, scoped, toks_[i].line);
  }

  bool seen_base_colon(std::size_t from, std::size_t to) const {
    int paren = 0;
    for (std::size_t k = from; k < to; ++k) {
      if (toks_[k].text == "(") ++paren;
      if (toks_[k].text == ")" && paren > 0) --paren;
      if (paren == 0 && toks_[k].text == ":") return true;
    }
    return false;
  }

  /// Parses a class body starting at the '{' at `open`; returns the
  /// index past the closing '}' (and its ';' if present).
  std::size_t parse_body(std::size_t open, const std::string& name,
                         bool scoped, int line) {
    ClassInfo info;
    info.name = prefix_.empty() ? name : prefix_ + "::" + name;
    info.file = file_.rel;
    info.line = line;
    info.scoped_capability = scoped;

    const std::string saved_prefix = prefix_;
    prefix_ = info.name;

    std::size_t i = open + 1;
    const std::size_t end = skip_balanced(toks_, open, "{", "}");
    while (i < end) i = parse_statement(i, end, &info);

    prefix_ = saved_prefix;
    out_->push_back(std::move(info));
    std::size_t after = end + 1;
    if (after < toks_.size() && toks_[after].text == ";") ++after;
    return after;
  }

  /// Parses one class-body statement starting at `i`; returns the index
  /// past it. Never returns <= i.
  std::size_t parse_statement(std::size_t i, std::size_t end,
                              ClassInfo* info) {
    const Token& t = toks_[i];
    if (t.text == ";") return i + 1;
    // Access specifiers.
    if ((is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected")) &&
        i + 1 < end && toks_[i + 1].text == ":") {
      return i + 2;
    }
    // Nested class definition (possibly after `template <...>`).
    std::size_t head = i;
    if (is_ident(t, "template") && i + 1 < end && toks_[i + 1].text == "<") {
      head = angle_match(i + 1, end) + 1;
    }
    if (head < end && is_class_kw(toks_[head]) &&
        !(head > 0 && is_ident(toks_[head - 1], "enum"))) {
      const std::size_t after = maybe_class(head);
      return after > i ? after : i + 1;
    }
    // Statements with no member-declaration content: skip to ';',
    // balancing any braces (enum bodies, etc).
    if (is_ident(t, "friend") || is_ident(t, "using") ||
        is_ident(t, "typedef") || is_ident(t, "static_assert") ||
        is_ident(t, "enum")) {
      return skip_to_semi(i, end);
    }

    // Walk the statement, classifying as function or member.
    bool saw_paren = false;   // a top-level '(' that starts a signature
    bool saw_assign = false;
    bool saw_operator = false;
    std::vector<std::size_t> stmt;  // token indices, annotation args incl.
    std::size_t j = i;
    int angle = 0;
    while (j < end) {
      const Token& u = toks_[j];
      if (u.kind == TokKind::kIdentifier && is_annotation_macro(u.text) &&
          j + 1 < end && toks_[j + 1].text == "(") {
        const std::size_t close = skip_balanced(toks_, j + 1, "(", ")");
        for (std::size_t k = j; k <= close; ++k) stmt.push_back(k);
        j = close + 1;
        continue;
      }
      if (u.kind == TokKind::kIdentifier &&
          (u.text == "decltype" || u.text == "alignas" ||
           u.text == "noexcept" || u.text == "sizeof") &&
          j + 1 < end && toks_[j + 1].text == "(") {
        j = skip_balanced(toks_, j + 1, "(", ")") + 1;
        continue;
      }
      if (is_ident(u, "operator")) saw_operator = true;
      // '<' counts as a template bracket only left of any '='; in an
      // initializer it is a comparison and must not unbalance the scan.
      if (u.text == "<" && j > i && !saw_assign &&
          toks_[j - 1].kind == TokKind::kIdentifier) {
        ++angle;
      } else if (u.text == ">" && angle > 0) {
        --angle;
      } else if (u.text == "=" && angle == 0 && !saw_operator) {
        saw_assign = true;
      } else if (u.text == "(" && angle == 0) {
        if (!saw_assign) saw_paren = true;
        j = skip_balanced(toks_, j, "(", ")") + 1;
        continue;
      } else if (u.text == "[" && j + 1 < end &&
                 toks_[j + 1].text == "[") {
        j = skip_balanced(toks_, j, "[", "]") + 1;  // [[attribute]]
        continue;
      } else if (u.text == ";" && angle == 0) {
        break;
      } else if (u.text == ":" && angle == 0 && saw_paren) {
        // Ctor-init list: skip initializers up to the body '{'.
        j = skip_init_list(j + 1, end);
        continue;
      } else if (u.text == "{" && angle == 0) {
        if (saw_paren || saw_operator) {
          // Function body: record annotations from the header, skip it.
          harvest_method_annotations(stmt, info);
          std::size_t after = skip_balanced(toks_, j, "{", "}") + 1;
          if (after < end && toks_[after].text == ";") ++after;
          return after;
        }
        // Member brace-or-equal initializer: skip the group.
        j = skip_balanced(toks_, j, "{", "}") + 1;
        continue;
      }
      stmt.push_back(j);
      ++j;
    }
    // Statement ended at ';' (or ran to the class end).
    if (saw_paren || saw_operator) {
      harvest_method_annotations(stmt, info);
    } else if (!stmt.empty()) {
      harvest_member(stmt, info);
    }
    return j < end ? j + 1 : end;
  }

  /// From the token after a ctor-init ':', returns the index of the
  /// function-body '{'. Each initializer is `name (args)` or
  /// `name {args}`, comma-separated; the brace that is not directly
  /// consumed as an initializer group is the body.
  std::size_t skip_init_list(std::size_t i, std::size_t end) {
    std::size_t j = i;
    while (j < end) {
      // Initializer name (possibly qualified / templated).
      while (j < end &&
             (toks_[j].kind == TokKind::kIdentifier ||
              toks_[j].text == "::" || toks_[j].text == "<" ||
              toks_[j].text == ">" || toks_[j].text == ",")) {
        if (toks_[j].text == ",") { /* between initializers */ }
        ++j;
      }
      if (j >= end) return end;
      if (toks_[j].text == "(") {
        j = skip_balanced(toks_, j, "(", ")") + 1;
        if (j < end && toks_[j].text == ",") continue;
        return j;  // next token should be the body '{'
      }
      if (toks_[j].text == "{") {
        // Either a member brace-init or the body. A brace-init is
        // followed by ',' (more initializers) or the body '{'.
        const std::size_t close = skip_balanced(toks_, j, "{", "}");
        if (close + 1 < end && (toks_[close + 1].text == "," ||
                                toks_[close + 1].text == "{")) {
          j = close + 1;
          continue;
        }
        return j;  // this '{' is the body itself (empty init unlikely)
      }
      ++j;
    }
    return end;
  }

  std::size_t skip_to_semi(std::size_t i, std::size_t end) {
    std::size_t j = i;
    while (j < end) {
      if (toks_[j].text == "{") {
        j = skip_balanced(toks_, j, "{", "}") + 1;
        continue;
      }
      if (toks_[j].text == ";") return j + 1;
      ++j;
    }
    return end;
  }

  std::size_t angle_match(std::size_t open, std::size_t end) const {
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
      if (toks_[j].text == "<") ++depth;
      if (toks_[j].text == ">" && --depth == 0) return j;
    }
    return end - 1;
  }

  /// Records FF_ACQUIRE / FF_RELEASE / FF_TRY_ACQUIRE annotations found
  /// in a method declaration's header tokens.
  void harvest_method_annotations(const std::vector<std::size_t>& stmt,
                                  ClassInfo* info) {
    for (std::size_t n = 0; n < stmt.size(); ++n) {
      const Token& t = toks_[stmt[n]];
      if (t.kind != TokKind::kIdentifier) continue;
      const bool acq = t.text == "FF_ACQUIRE" || t.text == "FF_TRY_ACQUIRE";
      const bool rel = t.text == "FF_RELEASE";
      if (!acq && !rel) continue;
      const std::size_t open = stmt[n] + 1;
      if (open >= toks_.size() || toks_[open].text != "(") continue;
      const std::size_t close = skip_balanced(toks_, open, "(", ")");
      auto args = split_args(toks_, open, close);
      if (t.text == "FF_TRY_ACQUIRE" && !args.empty()) {
        args.erase(args.begin());  // first argument is the result value
      }
      std::vector<std::string> caps;
      for (const auto& a : args) {
        const std::string cap = normalize_lock_expr(a);
        if (!cap.empty()) caps.push_back(cap);
      }
      if (caps.empty()) caps.push_back("<self>");
      for (std::string& cap : caps) {
        // A scoped capability's acquire/release both act on the lock it
        // wraps; normalize so the pair balances per class.
        if (info->scoped_capability) cap = "<self>";
        (acq ? info->acquires : info->releases)
            .push_back({cap, t.line});
      }
    }
  }

  /// Records one member declaration (splitting multi-declarator
  /// statements on top-level commas).
  void harvest_member(const std::vector<std::size_t>& stmt,
                      ClassInfo* info) {
    bool is_static = false;
    bool is_const = false;
    bool is_sync = false;
    bool is_mutex = false;
    bool guarded = false;
    bool numeric = false;
    bool counter = false;
    int angle = 0;
    for (std::size_t n = 0; n < stmt.size(); ++n) {
      const Token& t = toks_[stmt[n]];
      if (t.text == "<" && n > 0 &&
          toks_[stmt[n - 1]].kind == TokKind::kIdentifier) {
        ++angle;
      } else if (t.text == ">" && angle > 0) {
        --angle;
      }
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "FF_GUARDED_BY" || t.text == "FF_PT_GUARDED_BY") {
        guarded = true;
      }
      if (angle > 0) continue;
      if (t.text == "static" || t.text == "constexpr" ||
          t.text == "inline") {
        is_static = true;
      }
      if (t.text == "const") is_const = true;
      if (is_sync_type_token(t.text)) is_sync = true;
      if (is_mutex_type_token(t.text)) is_mutex = true;
      if (is_numeric_type_token(t.text)) numeric = true;
      if (is_counter_type_token(t.text)) counter = true;
    }

    // Member name: the identifier directly before the first annotation
    // macro, or failing that the last identifier of the declaration.
    std::string member;
    int line = toks_[stmt.front()].line;
    for (std::size_t n = 0; n < stmt.size(); ++n) {
      const Token& t = toks_[stmt[n]];
      if (t.kind == TokKind::kIdentifier && is_annotation_macro(t.text)) {
        break;
      }
      if (t.kind == TokKind::kIdentifier) {
        member = t.text;
        line = t.line;
      }
      if (t.text == "=" || t.text == "[") break;
    }
    if (member.empty() || is_annotation_macro(member)) return;

    if (is_mutex) info->mutex_members.push_back(member);
    MemberDecl decl;
    decl.name = member;
    decl.line = line;
    decl.guarded = guarded;
    decl.exempt = is_static || is_const || is_sync;
    decl.numeric = numeric && !is_static;
    decl.counter = counter && !is_static;
    info->members.push_back(decl);

    // FF_ACQUIRED_BEFORE/AFTER on the declaration: ordering edges.
    for (std::size_t n = 0; n < stmt.size(); ++n) {
      const Token& t = toks_[stmt[n]];
      const bool before = is_ident(t, "FF_ACQUIRED_BEFORE");
      const bool after = is_ident(t, "FF_ACQUIRED_AFTER");
      if (!before && !after) continue;
      const std::size_t open = stmt[n] + 1;
      if (open >= toks_.size() || toks_[open].text != "(") continue;
      const std::size_t close = skip_balanced(toks_, open, "(", ")");
      for (const auto& a : split_args(toks_, open, close)) {
        const std::string other = normalize_lock_expr(a);
        if (other.empty()) continue;
        const std::string self_q = info->name + "::" + member;
        const std::string other_q =
            other.find(':') == std::string::npos &&
                    other.find('(') == std::string::npos
                ? info->name + "::" + other
                : other;
        if (before) {
          info->order.push_back({{self_q, other_q}, t.line});
        } else {
          info->order.push_back({{other_q, self_q}, t.line});
        }
      }
    }
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  std::vector<ClassInfo>* out_;
  std::string prefix_;
};

// ---------------------------------------------------------------------
// Lock-order: guard scopes and the acquisition graph.
// ---------------------------------------------------------------------

struct LockEdge {
  std::string from;
  std::string to;
  const SourceFile* file;
  int line;
};

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "MutexLock";
}

bool is_lock_tag(const std::string& s) {
  return s == "defer_lock" || s == "try_to_lock" || s == "adopt_lock";
}

/// Scans one file for lexically nested guard scopes, producing ordering
/// edges from every held lock to each newly acquired one. Class and
/// out-of-line-method contexts qualify bare member names against the
/// tree-wide mutex-member index.
class GuardScanner {
 public:
  GuardScanner(const SourceFile& file,
               const std::map<std::string, std::set<std::string>>& mutexes,
               std::vector<LockEdge>* out)
      : file_(file), toks_(file.lex.tokens), mutexes_(mutexes), out_(out) {}

  void run() {
    int depth = 0;
    std::size_t stmt_start = 0;  // first token of the current statement
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.text == "{") {
        open_scope(stmt_start, i, depth);
        ++depth;
        stmt_start = i + 1;
        continue;
      }
      if (t.text == "}") {
        --depth;
        while (!guards_.empty() && guards_.back().depth > depth) {
          guards_.pop_back();
        }
        while (!ctx_.empty() && ctx_.back().depth > depth) ctx_.pop_back();
        stmt_start = i + 1;
        continue;
      }
      if (t.text == ";") {
        stmt_start = i + 1;
        continue;
      }
      if (t.kind == TokKind::kIdentifier && is_guard_type(t.text)) {
        i = guard(i, depth);
      }
    }
  }

 private:
  struct Guard {
    int depth;
    std::string lock;
  };
  struct Ctx {
    int depth;
    std::string cls;
  };

  /// Called on a '{': decides whether it opens a class body or a
  /// function body with a derivable class context, from the statement
  /// tokens [stmt_start, open).
  void open_scope(std::size_t stmt_start, std::size_t open, int depth) {
    std::string cls;
    bool in_class_head = false;
    int paren = 0;
    for (std::size_t k = stmt_start; k < open; ++k) {
      const Token& t = toks_[k];
      if (t.text == "(") ++paren;
      if (t.text == ")" && paren > 0) --paren;
      if (is_class_kw(t) && !(k > 0 && is_ident(toks_[k - 1], "enum"))) {
        in_class_head = true;
        cls.clear();
        continue;
      }
      if (in_class_head && paren == 0 && t.kind == TokKind::kIdentifier &&
          t.text != "final" && !is_annotation_macro(t.text)) {
        cls = t.text;
      }
      if (in_class_head && paren == 0 && t.text == ":") {
        in_class_head = false;  // base clause: name is fixed
      }
      // Out-of-line method definition: `Qual::name(...)`.
      if (!in_class_head && t.text == "::" && k > stmt_start &&
          k + 1 < open && paren == 0 &&
          toks_[k - 1].kind == TokKind::kIdentifier &&
          toks_[k + 1].kind == TokKind::kIdentifier &&
          k + 2 < open && toks_[k + 2].text == "(") {
        cls = toks_[k - 1].text;
      }
    }
    // Record the *inside* depth so the context pops exactly when the
    // scope's brace closes.
    if (!cls.empty()) ctx_.push_back({depth + 1, cls});
  }

  /// Handles one guard-type token; records edges from held locks and
  /// pushes the new acquisitions. Returns the index to continue from.
  /// Only the declaration form `Guard name(lock...)` / `Guard name{...}`
  /// counts: requiring the variable name keeps constructor declarations
  /// of the guard types themselves from reading as acquisitions.
  std::size_t guard(std::size_t i, int depth) {
    std::size_t j = i + 1;
    if (j < toks_.size() && toks_[j].text == "<") {
      int d = 0;
      for (; j < toks_.size(); ++j) {
        if (toks_[j].text == "<") ++d;
        if (toks_[j].text == ">" && --d == 0) break;
      }
      ++j;
    }
    if (j >= toks_.size() || toks_[j].kind != TokKind::kIdentifier) {
      return i;
    }
    ++j;
    if (j >= toks_.size() ||
        (toks_[j].text != "(" && toks_[j].text != "{")) {
      return i;
    }
    const bool braced = toks_[j].text == "{";
    const std::size_t close = braced ? skip_balanced(toks_, j, "{", "}")
                                     : skip_balanced(toks_, j, "(", ")");
    for (const auto& arg : split_args(toks_, j, close)) {
      std::string lock = normalize_lock_expr(arg);
      if (lock.empty() || is_lock_tag(lock)) continue;
      lock = qualify(lock);
      const int line = toks_[i].line;
      for (const Guard& held : guards_) {
        out_->push_back({held.lock, lock, &file_, line});
      }
      guards_.push_back({depth, lock});
    }
    return close;
  }

  /// Bare member names are qualified by the innermost class context
  /// that declares a mutex of that name.
  std::string qualify(const std::string& lock) const {
    if (lock.find(':') != std::string::npos ||
        lock.find('(') != std::string::npos) {
      return lock;
    }
    for (auto it = ctx_.rbegin(); it != ctx_.rend(); ++it) {
      const auto cls = mutexes_.find(it->cls);
      if (cls != mutexes_.end() && cls->second.count(lock) > 0) {
        return it->cls + "::" + lock;
      }
    }
    return lock;
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  const std::map<std::string, std::set<std::string>>& mutexes_;
  std::vector<LockEdge>* out_;
  std::vector<Guard> guards_;
  std::vector<Ctx> ctx_;
};

/// Depth-first cycle search over the lock-order graph; each distinct
/// cycle is reported once, rotated so its smallest lock name leads.
void find_lock_cycles(const std::vector<LockEdge>& edges,
                      std::vector<Finding>* out,
                      std::vector<Finding>* suppressed) {
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : edges) adj[e.from].push_back(&e);

  std::set<std::string> done;
  std::set<std::string> reported;

  // Iterative DFS with an explicit path stack.
  struct Frame {
    std::string node;
    std::size_t next{0};
  };
  for (const auto& [root, root_edges] : adj) {
    (void)root_edges;
    if (done.count(root) > 0) continue;
    std::vector<Frame> frames{{root, 0}};
    std::vector<std::string> path{root};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto it = adj.find(f.node);
      if (it == adj.end() || f.next >= it->second.size()) {
        done.insert(f.node);
        frames.pop_back();
        path.pop_back();
        continue;
      }
      // ff-lint: allow(container-invalidation) the pop_back branch above
      // continues the loop without touching 'f' again.
      const LockEdge* e = it->second[f.next++];
      const auto on_path = std::find(path.begin(), path.end(), e->to);
      if (on_path != path.end()) {
        // Cycle: path from e->to onward, closed by e.
        std::vector<std::string> cycle(on_path, path.end());
        const auto smallest =
            std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        std::string text;
        for (const std::string& n : cycle) text += n + " -> ";
        text += cycle.front();
        if (reported.insert(text).second) {
          const SourceFile* file = e->file;
          const std::string msg =
              cycle.size() == 1
                  ? "lock acquired while already held: " + text +
                        " (self-deadlock for a non-recursive mutex)"
                  : "lock acquisition order cycle: " + text +
                        "; make every path agree on one order or declare "
                        "it with FF_ACQUIRED_BEFORE";
          Finding found{file->rel, e->line, "lock-order", msg};
          if (allowed_rules_for(*file, e->line).count("lock-order") == 0) {
            out->push_back(std::move(found));
          } else if (suppressed != nullptr) {
            suppressed->push_back(std::move(found));
          }
        }
        continue;
      }
      if (done.count(e->to) > 0) continue;
      frames.push_back({e->to, 0});
      path.push_back(e->to);
    }
  }
}

}  // namespace

std::vector<ClassInfo> parse_classes(const SourceFile& file) {
  std::vector<ClassInfo> out;
  ClassParser(file, &out).run();
  return out;
}

std::vector<Finding> check_concurrency(const SourceTree& tree,
                                       std::vector<Finding>* suppressed) {
  std::vector<Finding> out;

  // Pass 1: class index across the whole of src/.
  std::vector<std::pair<const SourceFile*, ClassInfo>> classes;
  std::map<std::string, std::set<std::string>> mutex_index;  // class->locks
  for (const SourceFile& file : tree.files()) {
    if (file.rel.compare(0, 4, "src/") != 0 &&
        file.rel.compare(0, 11, "tools/lint/") != 0) {
      continue;
    }
    for (ClassInfo& info : parse_classes(file)) {
      if (!info.mutex_members.empty()) {
        auto& set = mutex_index[info.name];
        // Unqualified class name too: guard scopes see `Foo`, not
        // `Outer::Foo`, in their lexical context.
        const std::size_t tail = info.name.rfind("::");
        set.insert(info.mutex_members.begin(), info.mutex_members.end());
        if (tail != std::string::npos) {
          auto& short_set = mutex_index[info.name.substr(tail + 2)];
          short_set.insert(info.mutex_members.begin(),
                           info.mutex_members.end());
        }
      }
      classes.emplace_back(&file, std::move(info));
    }
  }

  // unguarded-shared-state + annotation-parity per class.
  for (const auto& [file, info] : classes) {
    if (!info.mutex_members.empty() && !info.scoped_capability) {
      for (const MemberDecl& m : info.members) {
        if (m.guarded || m.exempt) continue;
        Finding found{
            file->rel, m.line, "unguarded-shared-state",
            "member '" + m.name + "' of mutex-owning class '" + info.name +
                "' has no FF_GUARDED_BY and is not atomic/const; annotate "
                "it, or explain with "
                "'// ff-lint: allow(unguarded-shared-state) <reason>'"};
        if (allowed_rules_for(*file, m.line)
                .count("unguarded-shared-state") > 0) {
          if (suppressed != nullptr) suppressed->push_back(std::move(found));
          continue;
        }
        out.push_back(std::move(found));
      }
    }

    std::map<std::string, std::pair<int, int>> parity;  // cap->(acq,rel)
    std::map<std::string, int> first_line;
    for (const MethodAnnotation& a : info.acquires) {
      ++parity[a.capability].first;
      first_line.emplace(a.capability, a.line);
    }
    for (const MethodAnnotation& r : info.releases) {
      ++parity[r.capability].second;
      first_line.emplace(r.capability, r.line);
    }
    for (const auto& [cap, counts] : parity) {
      if (counts.first > 0 && counts.second > 0) continue;
      const int line = first_line[cap];
      const char* has = counts.first > 0 ? "FF_ACQUIRE" : "FF_RELEASE";
      const char* missing = counts.first > 0 ? "FF_RELEASE" : "FF_ACQUIRE";
      Finding found{
          file->rel, line, "annotation-parity",
          "class '" + info.name + "' declares " + has + " of capability '" +
              cap + "' but no " + missing +
              " in its API: callers could never balance the acquisition"};
      if (allowed_rules_for(*file, line).count("annotation-parity") > 0) {
        if (suppressed != nullptr) suppressed->push_back(std::move(found));
        continue;
      }
      out.push_back(std::move(found));
    }
  }

  // lock-order: declared edges plus lexically nested guard scopes.
  std::vector<LockEdge> edges;
  for (const auto& [file, info] : classes) {
    for (const auto& [pair, line] : info.order) {
      edges.push_back({pair.first, pair.second, file, line});
    }
  }
  for (const SourceFile& file : tree.files()) {
    if (file.rel.compare(0, 4, "src/") != 0 &&
        file.rel.compare(0, 11, "tools/lint/") != 0) {
      continue;
    }
    GuardScanner(file, mutex_index, &edges).run();
  }
  find_lock_cycles(edges, &out, suppressed);

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
