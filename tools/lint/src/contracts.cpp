#include "ff/lint/contracts.h"

#include <algorithm>
#include <cstddef>
#include <map>

#include "ff/lint/concurrency.h"

namespace ff::lint {
namespace {

bool in_scan_scope(const std::string& rel) {
  return rel.compare(0, 4, "src/") == 0 ||
         rel.compare(0, 11, "tools/lint/") == 0;
}

/// Token index just past the matching closer of the opener at `open`,
/// or toks.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open,
                       const char* op, const char* cl) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == op) ++depth;
    if (toks[i].text == cl && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Half-open token range.
struct TokenRange {
  std::size_t begin{0};
  std::size_t end{0};
  bool found{false};
};

/// Body range of the definition of function `name` inside [from, to):
/// `name ( ...balanced... ) <specifiers> {`. Declarations (terminated
/// by `;`) do not match.
TokenRange function_body(const std::vector<Token>& toks, std::size_t from,
                         std::size_t to, const std::string& name) {
  to = std::min(to, toks.size());
  for (std::size_t i = from; i < to; ++i) {
    if (toks[i].kind != TokKind::kIdentifier || toks[i].text != name) {
      continue;
    }
    if (i + 1 >= to || toks[i + 1].text != "(") continue;
    std::size_t j = skip_group(toks, i + 1, "(", ")");
    // Specifiers between the parameter list and the body: const,
    // noexcept, trailing return types, ref-qualifiers.
    while (j < to) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kIdentifier || t.text == "->" ||
          t.text == "::" || t.text == "<" || t.text == ">" ||
          t.text == "&" || t.text == "*") {
        ++j;
        continue;
      }
      break;
    }
    if (j >= to || toks[j].text != "{") continue;
    return {j + 1, skip_group(toks, j, "{", "}"), true};
  }
  return {};
}

/// Body range of `struct|class <name> ... {` (skipping forward
/// declarations).
TokenRange struct_body(const std::vector<Token>& toks,
                       const std::string& name) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "struct" && toks[i].text != "class") continue;
    if (toks[i + 1].kind != TokKind::kIdentifier ||
        toks[i + 1].text != name) {
      continue;
    }
    std::size_t j = i + 2;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
      ++j;
    }
    if (j >= toks.size() || toks[j].text != "{") continue;
    return {j + 1, skip_group(toks, j, "{", "}"), true};
  }
  return {};
}

void collect_idents(const std::vector<Token>& toks, const TokenRange& range,
                    std::set<std::string>* out) {
  for (std::size_t i = range.begin; i < range.end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdentifier) out->insert(toks[i].text);
  }
}

/// Conservation-identity methods per struct: fields named in their
/// bodies count as accounted even when absent from the fingerprint.
const std::map<std::string, std::vector<std::string>>&
conservation_sinks() {
  static const std::map<std::string, std::vector<std::string>> kSinks = {
      {"TelemetryTotals", {"accounted", "conserved"}},
      {"ServerResult", {"conserved"}},
  };
  return kSinks;
}

/// Exemption state of a field wrt fingerprint-exempt directives.
enum class Exempt { kNone, kMissingRationale, kExempt };

Exempt exemption_for(const std::vector<AllowDirective>& dirs,
                     const SourceFile& file, int line, int* directive_line) {
  Exempt state = Exempt::kNone;
  for (const AllowDirective& d : dirs) {
    if (d.rule != "fingerprint-exempt") continue;
    if (!directive_covers(file, d.line, line)) continue;
    *directive_line = d.line;
    if (d.has_rationale) return Exempt::kExempt;
    state = Exempt::kMissingRationale;
  }
  return state;
}

void emit(const SourceFile& file, int line, const char* rule,
          std::string message, std::vector<Finding>* out,
          std::vector<Finding>* suppressed) {
  Finding f{file.rel, line, rule, std::move(message)};
  if (allowed_rules_for(file, line).count(rule) > 0) {
    if (suppressed != nullptr) suppressed->push_back(std::move(f));
    return;
  }
  out->push_back(std::move(f));
}

// ---------------------------------------------------------------------
// nodiscard-contract helpers.
// ---------------------------------------------------------------------

/// One curated-name API declaration found by the scan.
struct ApiDecl {
  std::string module;
  bool returns_status{false};  ///< false: void-returning overload
};

bool is_expr_keyword(const std::string& t) {
  static const std::set<std::string> kKw = {
      "return", "co_return", "co_yield", "co_await", "throw", "new",
      "delete", "case",      "goto",     "else",     "do",    "sizeof",
      "typename", "operator"};
  return kKw.count(t) > 0;
}

/// Modules whose APIs `file` may call: its own plus every module
/// providing a header in its transitive ff-include closure (mirrors
/// the call-graph resolution rule).
std::set<std::string> visible_modules(const SourceTree& tree,
                                      const SourceFile& file) {
  std::set<std::string> modules;
  if (!file.module.empty()) modules.insert(file.module);
  std::set<std::string> seen;
  std::vector<const SourceFile*> work{&file};
  while (!work.empty()) {
    const SourceFile* cur = work.back();
    work.pop_back();
    for (const IncludeDirective& inc : cur->lex.includes) {
      if (!seen.insert(inc.path).second) continue;
      const SourceFile* next = tree.resolve(inc.path);
      if (next == nullptr) continue;
      if (!next->module.empty()) modules.insert(next->module);
      work.push_back(next);
    }
  }
  return modules;
}

}  // namespace

const std::set<std::string>& fingerprint_structs() {
  static const std::set<std::string> kStructs = {
      "TelemetryTotals", "DeviceResult",   "ServerResult",
      "TenantResult",    "ExperimentResult", "ServerStats",
      "AdmissionStats",  "OffloadClientStats", "ChannelStats"};
  return kStructs;
}

bool nodiscard_api_name(const std::string& name) {
  if (name.rfind("try_", 0) == 0) return true;
  if (name.rfind("evaluate_", 0) == 0) return true;
  return name == "submit" || name == "place" || name == "admit";
}

std::vector<Finding> check_fingerprint_completeness(
    const SourceTree& tree, std::vector<Finding>* suppressed) {
  std::vector<Finding> out;

  // The fingerprint sink: the body of sweep::result_fingerprint,
  // wherever it is defined. Without it the rule is inert.
  std::set<std::string> fingerprint;
  bool have_sink = false;
  for (const SourceFile& file : tree.files()) {
    const TokenRange body = function_body(file.lex.tokens, 0,
                                          file.lex.tokens.size(),
                                          "result_fingerprint");
    if (!body.found) continue;
    have_sink = true;
    collect_idents(file.lex.tokens, body, &fingerprint);
  }
  if (!have_sink) return out;

  for (const SourceFile& file : tree.files()) {
    if (!in_scan_scope(file.rel)) continue;
    const std::vector<AllowDirective> dirs = allow_directives(file);
    for (const ClassInfo& info : parse_classes(file)) {
      if (fingerprint_structs().count(info.name) == 0) continue;

      // Accounted set for this struct: the fingerprint body plus any
      // inline conservation-identity bodies.
      std::set<std::string> accounted = fingerprint;
      const auto sinks = conservation_sinks().find(info.name);
      if (sinks != conservation_sinks().end()) {
        const TokenRange body = struct_body(file.lex.tokens, info.name);
        if (body.found) {
          for (const std::string& method : sinks->second) {
            const TokenRange mb = function_body(file.lex.tokens, body.begin,
                                                body.end, method);
            if (mb.found) collect_idents(file.lex.tokens, mb, &accounted);
          }
        }
      }

      for (const MemberDecl& m : info.members) {
        if (!m.numeric) continue;
        if (accounted.count(m.name) > 0) continue;
        int directive_line = m.line;
        switch (exemption_for(dirs, file, m.line, &directive_line)) {
          case Exempt::kExempt:
            // Record the directive as load-bearing for stale-allow.
            if (suppressed != nullptr) {
              suppressed->push_back(
                  {file.rel, m.line, "fingerprint-exempt",
                   "field '" + m.name + "' exempted from the fingerprint"});
            }
            break;
          case Exempt::kMissingRationale:
            // One finding, not two: the directive is attached to this
            // field, so mark it load-bearing rather than letting
            // stale-allow pile on top of the rationale complaint.
            if (suppressed != nullptr) {
              suppressed->push_back(
                  {file.rel, m.line, "fingerprint-exempt",
                   "field '" + m.name + "' exempted without rationale"});
            }
            emit(file, directive_line, "fingerprint-completeness",
                 "allow(fingerprint-exempt) on field '" + m.name + "' of '" +
                     info.name +
                     "' requires a rationale after the directive",
                 &out, suppressed);
            break;
          case Exempt::kNone:
            emit(file, m.line, "fingerprint-completeness",
                 "numeric field '" + m.name + "' of '" + info.name +
                     "' is not mixed into sweep::result_fingerprint or a "
                     "conservation identity; mix it, or annotate with "
                     "'// ff-lint: allow(fingerprint-exempt) <rationale>'",
                 &out, suppressed);
            break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Finding> check_nodiscard(const SourceTree& tree,
                                     std::vector<Finding>* suppressed) {
  std::vector<Finding> out;

  // Pass 1: declaration discipline, and the cross-TU API index used to
  // resolve call sites.
  std::map<std::string, std::vector<ApiDecl>> api;
  for (const SourceFile& file : tree.files()) {
    if (!in_scan_scope(file.rel)) continue;
    const std::vector<Token>& toks = file.lex.tokens;
    std::size_t stmt_start = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        stmt_start = i + 1;
        continue;
      }
      if (t.kind != TokKind::kIdentifier || !nodiscard_api_name(t.text)) {
        continue;
      }
      if (i == 0 || i + 1 >= toks.size() || toks[i + 1].text != "(") {
        continue;
      }
      // Declaration position: the name is preceded by its return type
      // (identifier, `>`, or a `&`/`*` declarator after one), never by
      // an expression context (call punctuation, keywords, `::` of an
      // out-of-line definition -- [[nodiscard]] lives on declarations).
      const Token& prev = toks[i - 1];
      bool decl = false;
      if (prev.kind == TokKind::kIdentifier) {
        decl = !is_expr_keyword(prev.text);
      } else if (prev.text == ">") {
        decl = true;
      } else if (prev.text == "&" || prev.text == "*") {
        decl = i >= 2 && (toks[i - 2].kind == TokKind::kIdentifier ||
                          toks[i - 2].text == ">");
      }
      if (!decl) continue;

      bool returns_void = false;
      bool has_nodiscard = false;
      bool has_ptr = false;
      for (std::size_t j = stmt_start; j < i; ++j) {
        if (toks[j].text == "void") returns_void = true;
        if (toks[j].text == "*") has_ptr = true;
        if (toks[j].text == "nodiscard" || toks[j].text == "FF_NODISCARD") {
          has_nodiscard = true;
        }
      }
      if (returns_void && !has_ptr) {
        api[t.text].push_back({file.module, false});
        continue;
      }
      api[t.text].push_back({file.module, true});
      if (!has_nodiscard) {
        emit(file, t.line, "nodiscard-contract",
             "status-returning API '" + t.text +
                 "' must be declared [[nodiscard]]: its return value "
                 "encodes success/placement",
             &out, suppressed);
      }
    }
  }

  // Pass 2: discarded calls. A curated-name call in expression-
  // statement position whose visible declarations all return status.
  for (const SourceFile& file : tree.files()) {
    const std::vector<Token>& toks = file.lex.tokens;
    std::set<std::string> visible;
    bool visible_built = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier || !nodiscard_api_name(t.text)) {
        continue;
      }
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      // Walk back over a simple access chain (`obj.`, `ptr->`, `NS::`).
      std::size_t start = i;
      while (start >= 2 &&
             (toks[start - 1].text == "." || toks[start - 1].text == "->" ||
              toks[start - 1].text == "::") &&
             toks[start - 2].kind == TokKind::kIdentifier) {
        start -= 2;
      }
      if (start > 0) {
        const std::string& p = toks[start - 1].text;
        const bool stmt_pos = p == ";" || p == "{" || p == "}" ||
                              p == "else" || p == ")";
        if (!stmt_pos) continue;
        // `(void)expr;` is the sanctioned deliberate discard.
        if (p == ")" && start >= 3 && toks[start - 2].text == "void" &&
            toks[start - 3].text == "(") {
          continue;
        }
      }
      const std::size_t after = skip_group(toks, i + 1, "(", ")");
      if (after >= toks.size() || toks[after].text != ";") continue;

      const auto entry = api.find(t.text);
      if (entry == api.end()) continue;
      if (!visible_built) {
        visible = visible_modules(tree, file);
        visible_built = true;
      }
      bool any_status = false;
      bool any_void = false;
      for (const ApiDecl& d : entry->second) {
        if (visible.count(d.module) == 0) continue;
        (d.returns_status ? any_status : any_void) = true;
      }
      if (!any_status || any_void) continue;
      emit(file, t.line, "nodiscard-contract",
           "discarded result of '" + t.text +
               "': the return value encodes success/placement and must be "
               "checked (cast to (void) to discard deliberately)",
           &out, suppressed);
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
