#include "ff/lint/dataflow.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>

#include "ff/lint/callgraph.h"

namespace ff::lint {
namespace {

/// Calls that may move a growable container's element storage (or
/// destroy elements), invalidating outstanding bindings into it.
bool is_mutator(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back",  "push_front",
      "emplace_front", "pop_front", "insert",   "emplace",
      "erase",     "clear",        "resize",    "assign",
      "append",    "shrink_to_fit", "reserve",
  };
  return kMutators.count(name) > 0;
}

bool is_push(const std::string& name) {
  return name == "push_back" || name == "emplace_back" ||
         name == "push_front" || name == "emplace_front";
}

/// Accessors whose result is an iterator into the container.
bool is_iterator_accessor(const std::string& name) {
  static const std::set<std::string> kIter = {
      "begin",  "end",  "cbegin", "cend",        "rbegin",     "rend",
      "crbegin", "crend", "find",  "lower_bound", "upper_bound",
      "erase",  "insert"};
  return kIter.count(name) > 0;
}

/// Accessors whose result refers to an element (reference if bound by
/// reference, pointer if its address is taken).
bool is_element_accessor(const std::string& name) {
  return name == "back" || name == "front" || name == "at";
}

bool is_pointer_accessor(const std::string& name) {
  return name == "data" || name == "c_str";
}

enum class BindKind { kRef, kPointer, kIterator };

const char* kind_name(BindKind k) {
  switch (k) {
    case BindKind::kRef:
      return "reference";
    case BindKind::kPointer:
      return "pointer";
    case BindKind::kIterator:
      return "iterator";
  }
  return "binding";
}

struct Binding {
  std::string name;
  std::string container;
  BindKind kind{BindKind::kRef};
  int depth{0};               ///< brace depth at declaration
  std::size_t bound_at{0};    ///< token index of the binding
  int bound_line{1};
  std::size_t tainted_at{0};  ///< 0 = still valid; else first token
                              ///< index after the mutating call
  std::string mutator;
  int mutate_line{1};
};

/// What a binding initializer refers to: `[&] [this ->] C ( [ | . m ( )`.
struct Rhs {
  bool matched{false};
  std::string container;
  BindKind kind{BindKind::kRef};
  bool element{false};  ///< element access: kind depends on the LHS
};

/// Keywords that can precede an identifier in expression position and
/// must not be mistaken for a declaration's type token.
bool is_non_type_keyword(const std::string& t) {
  static const std::set<std::string> kKw = {
      "return", "if",   "while", "for",  "switch", "case",  "do",
      "else",   "goto", "new",   "delete", "co_return", "co_await",
      "co_yield", "throw"};
  return kKw.count(t) > 0;
}

/// Token index just past the matching ')' of the '(' at `open`, or
/// toks.size() when unbalanced.
std::size_t skip_call(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Per-function analysis state and walk.
class BodyAnalysis {
 public:
  BodyAnalysis(const SourceFile& file,
               const std::map<std::string, std::string>& containers,
               std::vector<Finding>* out, std::vector<Finding>* suppressed)
      : file_(file),
        containers_(containers),
        out_(out),
        suppressed_(suppressed) {}

  void run(std::size_t body_begin, std::size_t body_end) {
    const std::vector<Token>& toks = file_.lex.tokens;
    int depth = 0;
    for (std::size_t i = body_begin; i < body_end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          --depth;
          close_scope(depth);
        }
        continue;
      }
      if (t.kind != TokKind::kIdentifier) continue;

      // Mutating call on a tracked container? (Does not consume the
      // token: the same identifier may also be a tracked binding.)
      mutation(toks, i);

      // New binding declaration (`auto& r = v.back()`, `auto it = ...`)?
      if (binding_decl(toks, i, depth)) continue;

      // Range-for reference binding (`for (auto& x : v)`)?
      if (range_for_binding(toks, i, depth)) continue;

      // Re-assignment or use of an existing binding.
      binding_touch(toks, i);
    }
  }

 private:
  const std::string* container_kind(const std::string& name) const {
    const auto it = containers_.find(name);
    return it == containers_.end() ? nullptr : &it->second;
  }

  void close_scope(int depth) {
    bindings_.erase(std::remove_if(bindings_.begin(), bindings_.end(),
                                   [depth](const Binding& b) {
                                     return b.depth > depth;
                                   }),
                    bindings_.end());
  }

  /// Parses `[&] [this ->] C ( [ | . accessor ( )` starting at `j`.
  Rhs parse_rhs(const std::vector<Token>& toks, std::size_t j) const {
    Rhs rhs;
    if (j < toks.size() && toks[j].text == "&") {
      rhs.kind = BindKind::kPointer;
      ++j;
    }
    if (j + 1 < toks.size() && toks[j].text == "this" &&
        toks[j + 1].text == "->") {
      j += 2;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdentifier) return rhs;
    const std::string* kind = container_kind(toks[j].text);
    if (kind == nullptr) return rhs;
    rhs.container = toks[j].text;
    if (j + 1 >= toks.size()) return rhs;
    const std::string& next = toks[j + 1].text;
    if (next == "[") {
      rhs.matched = true;
      rhs.element = rhs.kind != BindKind::kPointer;
      return rhs;
    }
    if ((next == "." || next == "->") && j + 3 < toks.size() &&
        toks[j + 2].kind == TokKind::kIdentifier &&
        toks[j + 3].text == "(") {
      const std::string& acc = toks[j + 2].text;
      if (rhs.kind != BindKind::kPointer && is_iterator_accessor(acc)) {
        rhs.matched = true;
        rhs.kind = BindKind::kIterator;
        return rhs;
      }
      if (rhs.kind != BindKind::kPointer && is_pointer_accessor(acc)) {
        rhs.matched = true;
        rhs.kind = BindKind::kPointer;
        return rhs;
      }
      if (is_element_accessor(acc)) {
        rhs.matched = true;
        rhs.element = rhs.kind != BindKind::kPointer;
        return rhs;
      }
    }
    return rhs;
  }

  /// Handles `[this ->] C . mutator ( ... )` at token `i` (the
  /// container identifier), tainting live bindings into C.
  void mutation(const std::vector<Token>& toks, std::size_t i) {
    const std::string* kind = container_kind(toks[i].text);
    if (kind == nullptr) return;
    if (i + 3 >= toks.size()) return;
    if (toks[i + 1].text != "." && toks[i + 1].text != "->") return;
    if (toks[i + 2].kind != TokKind::kIdentifier ||
        !is_mutator(toks[i + 2].text)) {
      return;
    }
    if (toks[i + 3].text != "(") return;
    const std::string& mut = toks[i + 2].text;
    const std::string& name = toks[i].text;
    const std::size_t after = skip_call(toks, i + 3);
    if (mut == "reserve") last_reserve_[name] = i;
    for (Binding& b : bindings_) {
      if (b.container != name || b.tainted_at != 0) continue;
      // deque references/pointers survive growth at either end.
      if (*kind == "deque" && is_push(mut) && b.kind != BindKind::kIterator) {
        continue;
      }
      // reserve() sequenced before the binding exempts later growth.
      if (*kind == "vector" &&
          (mut == "push_back" || mut == "emplace_back")) {
        const auto r = last_reserve_.find(name);
        if (r != last_reserve_.end() && r->second < b.bound_at) continue;
      }
      // reserve itself only reallocates; it cannot shrink. Treat it as
      // a mutation for bindings taken before it (no capacity promise).
      b.tainted_at = after;
      b.mutator = mut;
      b.mutate_line = toks[i].line;
    }
  }

  /// Handles a declaration `type[&|*] name = <rhs>` whose `=` is at
  /// `i + 1`. Returns true when a binding was created.
  bool binding_decl(const std::vector<Token>& toks, std::size_t i,
                    int depth) {
    if (i + 2 >= toks.size() || i == 0) return false;
    if (toks[i + 1].text != "=" || toks[i + 2].text == "=") return false;
    // Declaration-ish left context: `auto& r`, `const T* p`, `auto it`.
    const std::string& prev = toks[i - 1].text;
    bool lhs_ref = false;
    if (prev == "&" || prev == "*") {
      if (i < 2 || (toks[i - 2].kind != TokKind::kIdentifier &&
                    toks[i - 2].text != ">")) {
        return false;
      }
      lhs_ref = prev == "&";
    } else if (toks[i - 1].kind == TokKind::kIdentifier) {
      // Plain `auto it = ...` / `T it = ...`.
      if (is_non_type_keyword(prev)) return false;
    } else {
      return false;
    }
    Rhs rhs = parse_rhs(toks, i + 2);
    if (!rhs.matched) return false;
    if (rhs.element) {
      if (!lhs_ref) return false;  // by-value copy of an element: fine
      rhs.kind = BindKind::kRef;
    }
    upsert(toks[i].text, rhs, depth, i, toks[i].line);
    return true;
  }

  /// Handles `for (auto& x : v)` at the loop variable identifier `i`
  /// (pattern keyed on the `:` that follows it).
  bool range_for_binding(const std::vector<Token>& toks, std::size_t i,
                         int depth) {
    if (i == 0 || i + 2 >= toks.size()) return false;
    if (toks[i - 1].text != "&") return false;
    if (toks[i + 1].text != ":") return false;
    std::size_t j = i + 2;
    if (j + 1 < toks.size() && toks[j].text == "this" &&
        toks[j + 1].text == "->") {
      j += 2;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdentifier) {
      return false;
    }
    if (container_kind(toks[j].text) == nullptr) return false;
    Rhs rhs;
    rhs.container = toks[j].text;
    rhs.kind = BindKind::kRef;
    // Scope the loop variable to the loop body, one level deeper.
    upsert(toks[i].text, rhs, depth + 1, i, toks[i].line);
    return true;
  }

  /// Re-assignment (re-take) or use of a live binding named at `i`.
  void binding_touch(const std::vector<Token>& toks, std::size_t i) {
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                  toks[i - 1].text == "::")) {
      return;  // member of something else that reuses the name
    }
    const auto it = std::find_if(bindings_.begin(), bindings_.end(),
                                 [&](const Binding& b) {
                                   return b.name == toks[i].text;
                                 });
    if (it == bindings_.end()) return;
    Binding& b = *it;

    const bool assigned = i + 2 < toks.size() && toks[i + 1].text == "=" &&
                          toks[i + 2].text != "=";
    if (assigned && b.kind != BindKind::kRef) {
      // Re-taking an iterator/pointer after mutation is the fix, not a
      // bug: rebind (fresh if the initializer is a container access,
      // gone from tracking otherwise).
      Rhs rhs = parse_rhs(toks, i + 2);
      if (rhs.matched && !rhs.element) {
        upsert(b.name, rhs, b.depth, i, toks[i].line);
      } else {
        bindings_.erase(it);
      }
      return;
    }

    if (b.tainted_at == 0 || i < b.tainted_at) return;
    report(b, toks[i].line);
    bindings_.erase(it);  // one finding per invalidated binding
  }

  void upsert(const std::string& name, const Rhs& rhs, int depth,
              std::size_t at, int line) {
    const auto it = std::find_if(bindings_.begin(), bindings_.end(),
                                 [&](const Binding& b) {
                                   return b.name == name;
                                 });
    Binding b;
    b.name = name;
    b.container = rhs.container;
    b.kind = rhs.kind;
    b.depth = it == bindings_.end() ? depth : it->depth;
    b.bound_at = at;
    b.bound_line = line;
    if (it == bindings_.end()) {
      bindings_.push_back(std::move(b));
    } else {
      *it = std::move(b);
    }
  }

  void report(const Binding& b, int line) {
    Finding f{file_.rel, line, "container-invalidation",
              std::string(kind_name(b.kind)) + " '" + b.name + "' into '" +
                  b.container + "' (bound at line " +
                  std::to_string(b.bound_line) + ") used after '" +
                  b.container + "." + b.mutator + "()' at line " +
                  std::to_string(b.mutate_line) +
                  " may be invalidated; re-take it after the mutation or "
                  "reserve() capacity before binding"};
    if (allowed_rules_for(file_, line).count("container-invalidation") > 0) {
      if (suppressed_ != nullptr) suppressed_->push_back(std::move(f));
      return;
    }
    out_->push_back(std::move(f));
  }

  const SourceFile& file_;
  const std::map<std::string, std::string>& containers_;
  std::vector<Finding>* out_;
  std::vector<Finding>* suppressed_;
  std::vector<Binding> bindings_;
  std::map<std::string, std::size_t> last_reserve_;
};

bool in_scan_scope(const std::string& rel) {
  return rel.compare(0, 4, "src/") == 0 ||
         rel.compare(0, 11, "tools/lint/") == 0;
}

}  // namespace

std::vector<Finding> check_container_invalidation(
    const SourceTree& tree, std::vector<Finding>* suppressed) {
  std::vector<Finding> out;
  std::map<std::size_t, std::map<std::string, std::string>> containers;
  for (const FunctionDef& fn : index_functions(tree)) {
    const SourceFile& file = tree.files()[fn.file];
    if (!in_scan_scope(file.rel)) continue;
    auto cached = containers.find(fn.file);
    if (cached == containers.end()) {
      cached = containers
                   .emplace(fn.file, tree.visible_container_decls(file))
                   .first;
    }
    if (cached->second.empty()) continue;
    BodyAnalysis analysis(file, cached->second, &out, suppressed);
    analysis.run(fn.body_begin, fn.body_end);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
