#include "ff/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ff/lint/graph.h"
#include "ff/lint/tree.h"

namespace ff::lint {
namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("ff-lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

LintResult lint_files(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const SourceTree tree(files);
  LintResult result;
  result.files_scanned = tree.files().size();
  for (const SourceFile& file : tree.files()) {
    const std::vector<Finding> det = check_determinism(tree, file);
    result.findings.insert(result.findings.end(), det.begin(), det.end());
  }
  const std::vector<Finding> arch = check_architecture(tree);
  result.findings.insert(result.findings.end(), arch.begin(), arch.end());
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

LintResult lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("ff-lint: no src/ directory under " + root);
  }
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    const std::string rel =
        fs::relative(entry.path(), fs::path(root)).generic_string();
    files.emplace_back(rel, slurp(entry.path()));
  }
  return lint_files(files);
}

}  // namespace ff::lint
