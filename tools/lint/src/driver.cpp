#include "ff/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ff/lint/callgraph.h"
#include "ff/lint/concurrency.h"
#include "ff/lint/graph.h"
#include "ff/lint/tree.h"

namespace ff::lint {
namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("ff-lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void scan_dir(const std::filesystem::path& root,
              const std::filesystem::path& dir,
              std::vector<std::pair<std::string, std::string>>* files) {
  namespace fs = std::filesystem;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    files->emplace_back(rel, slurp(entry.path()));
  }
}

void json_escape(const std::string& s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

LintResult lint_files(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const SourceTree tree(files);
  LintResult result;
  result.files_scanned = tree.files().size();
  for (const SourceFile& file : tree.files()) {
    const std::vector<Finding> det = check_determinism(tree, file);
    result.findings.insert(result.findings.end(), det.begin(), det.end());
  }
  const std::vector<Finding> arch = check_architecture(tree);
  result.findings.insert(result.findings.end(), arch.begin(), arch.end());
  const std::vector<Finding> conc = check_concurrency(tree);
  result.findings.insert(result.findings.end(), conc.begin(), conc.end());
  const std::vector<Finding> reach = check_reachability(tree);
  result.findings.insert(result.findings.end(), reach.begin(), reach.end());
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

LintResult lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  const fs::path src = base / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("ff-lint: no src/ directory under " + root);
  }
  std::vector<std::pair<std::string, std::string>> files;
  scan_dir(base, src, &files);
  for (const char* extra : {"bench", "examples"}) {
    const fs::path dir = base / extra;
    if (fs::is_directory(dir)) scan_dir(base, dir, &files);
  }
  return lint_files(files);
}

void write_findings_json(const LintResult& result, std::ostream& os) {
  os << "{\"findings\":[";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) os << ",";
    first = false;
    os << "{\"file\":\"";
    json_escape(f.file, os);
    os << "\",\"line\":" << f.line << ",\"rule\":\"";
    json_escape(f.rule, os);
    os << "\",\"message\":\"";
    json_escape(f.message, os);
    os << "\"}";
  }
  os << "],\"files_scanned\":" << result.files_scanned << "}\n";
}

}  // namespace ff::lint
