#include "ff/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ff/lint/callgraph.h"
#include "ff/lint/concurrency.h"
#include "ff/lint/contracts.h"
#include "ff/lint/dataflow.h"
#include "ff/lint/graph.h"
#include "ff/lint/tree.h"

namespace ff::lint {
namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("ff-lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void scan_dir(const std::filesystem::path& root,
              const std::filesystem::path& dir,
              std::vector<std::pair<std::string, std::string>>* files) {
  namespace fs = std::filesystem;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    files->emplace_back(rel, slurp(entry.path()));
  }
}

void json_escape(const std::string& s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

LintResult lint_files(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const SourceTree tree(files);
  LintResult result;
  // Findings an allow() directive dropped, collected across every rule
  // family so the stale-allow pass below can tell load-bearing
  // directives from leftovers.
  std::vector<Finding> suppressed;
  result.files_scanned = tree.files().size();
  for (const SourceFile& file : tree.files()) {
    const std::vector<Finding> det =
        check_determinism(tree, file, &suppressed);
    result.findings.insert(result.findings.end(), det.begin(), det.end());
  }
  for (const auto& check : {check_architecture, check_concurrency,
                            check_reachability, check_container_invalidation,
                            check_fingerprint_completeness, check_nodiscard}) {
    const std::vector<Finding> found = check(tree, &suppressed);
    result.findings.insert(result.findings.end(), found.begin(), found.end());
  }
  // stale-allow: a directive is load-bearing iff some suppressed
  // finding of the named rule falls within its statement extent. The
  // rule has no escape hatch -- a stale directive is deleted, not
  // allowed.
  for (const SourceFile& file : tree.files()) {
    for (const AllowDirective& d : allow_directives(file)) {
      bool used = false;
      for (const Finding& s : suppressed) {
        if (s.file != file.rel || s.rule != d.rule) continue;
        if (!directive_covers(file, d.line, s.line)) continue;
        used = true;
        break;
      }
      if (used) continue;
      result.findings.push_back(
          {file.rel, d.line, "stale-allow",
           "directive 'allow(" + d.rule +
               ")' suppresses no finding; delete it"});
    }
  }
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

LintResult lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  const fs::path src = base / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("ff-lint: no src/ directory under " + root);
  }
  std::vector<std::pair<std::string, std::string>> files;
  scan_dir(base, src, &files);
  for (const char* extra : {"bench", "examples", "tools/lint"}) {
    const fs::path dir = base / extra;
    if (fs::is_directory(dir)) scan_dir(base, dir, &files);
  }
  return lint_files(files);
}

void write_findings_json(const LintResult& result, std::ostream& os) {
  os << "{\"findings\":[";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) os << ",";
    first = false;
    os << "{\"file\":\"";
    json_escape(f.file, os);
    os << "\",\"line\":" << f.line << ",\"rule\":\"";
    json_escape(f.rule, os);
    os << "\",\"message\":\"";
    json_escape(f.message, os);
    os << "\"}";
  }
  os << "],\"files_scanned\":" << result.files_scanned << "}\n";
}

void write_findings_sarif(const LintResult& result, std::ostream& os) {
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"ff-lint\",\"rules\":[";
  bool first = true;
  for (const std::string& rule : rule_registry()) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"";
    json_escape(rule, os);
    os << "\"}";
  }
  os << "]}},\"results\":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) os << ",";
    first = false;
    os << "{\"ruleId\":\"";
    json_escape(f.rule, os);
    os << "\",\"level\":\"error\",\"message\":{\"text\":\"";
    json_escape(f.message, os);
    os << "\"},\"locations\":[{\"physicalLocation\":{"
          "\"artifactLocation\":{\"uri\":\"";
    json_escape(f.file, os);
    os << "\"},\"region\":{\"startLine\":" << f.line << "}}}]}";
  }
  os << "]}]}\n";
}

const std::vector<std::string>& rule_registry() {
  static const std::vector<std::string> kRules = {
      // determinism family
      "wall-clock", "ambient-entropy", "unordered-pointer-key",
      "unordered-iteration", "raw-allocation",
      // architecture family
      "layering", "include-cycle", "header-hygiene",
      // concurrency family
      "unguarded-shared-state", "lock-order", "annotation-parity",
      // call-graph family
      "determinism-reachability",
      // dataflow family
      "container-invalidation",
      // repo-contract family
      "fingerprint-completeness", "nodiscard-contract",
      // meta
      "stale-allow"};
  return kRules;
}

}  // namespace ff::lint
