#include "ff/lint/graph.h"

#include <algorithm>
#include <cstddef>

namespace ff::lint {
namespace {

bool is_ff_path(const std::string& path) {
  return path.compare(0, 3, "ff/") == 0;
}

/// Module component of "ff/<module>/<name>.h", or "".
std::string ff_module(const std::string& path) {
  if (!is_ff_path(path)) return "";
  const std::size_t end = path.find('/', 3);
  if (end == std::string::npos) return "";
  return path.substr(3, end - 3);
}

/// Real findings land in `out`; findings dropped by an allow()
/// directive land in `suppressed` (when non-null) for stale-allow.
struct Sink {
  std::vector<Finding>* out{nullptr};
  std::vector<Finding>* suppressed{nullptr};
};

void add_finding(const SourceFile& file, int line, const char* rule,
                 std::string message, const Sink& sink) {
  Finding f{file.rel, line, rule, std::move(message)};
  if (allowed_rules_for(file, line).count(rule) > 0) {
    if (sink.suppressed != nullptr) sink.suppressed->push_back(std::move(f));
    return;
  }
  sink.out->push_back(std::move(f));
}

/// Depth-first cycle search over the public-header include graph. Each
/// distinct cycle is reported once, canonicalized by rotating its
/// smallest header key to the front.
class CycleFinder {
 public:
  CycleFinder(const SourceTree& tree, const Sink& sink)
      : tree_(tree), sink_(sink) {}

  void run() {
    for (const SourceFile& f : tree_.files()) {
      if (f.public_header) visit(f);
    }
  }

 private:
  void visit(const SourceFile& file) {
    if (done_.count(file.header_key) > 0) return;
    const auto on_stack = std::find(stack_.begin(), stack_.end(), &file);
    if (on_stack != stack_.end()) {
      report(on_stack);
      return;
    }
    stack_.push_back(&file);
    for (const IncludeDirective& inc : file.lex.includes) {
      const SourceFile* next = tree_.resolve(inc.path);
      if (next != nullptr && next->public_header) visit(*next);
    }
    stack_.pop_back();
    done_.insert(file.header_key);
  }

  void report(std::vector<const SourceFile*>::iterator begin) {
    std::vector<const SourceFile*> cycle(begin, stack_.end());
    const auto smallest = std::min_element(
        cycle.begin(), cycle.end(), [](const SourceFile* a,
                                       const SourceFile* b) {
          return a->header_key < b->header_key;
        });
    std::rotate(cycle.begin(), smallest, cycle.end());
    std::string path;
    for (const SourceFile* f : cycle) path += f->header_key + " -> ";
    path += cycle.front()->header_key;
    if (!seen_.insert(path).second) return;
    // Anchor the finding at the include that closes the cycle.
    const SourceFile& tail = *cycle.back();
    int line = 1;
    for (const IncludeDirective& inc : tail.lex.includes) {
      if (inc.path == cycle.front()->header_key) line = inc.line;
    }
    add_finding(tail, line, "include-cycle",
                "public-header include cycle: " + path, sink_);
  }

  const SourceTree& tree_;
  Sink sink_;
  std::vector<const SourceFile*> stack_;
  std::set<std::string> done_;
  std::set<std::string> seen_;
};

}  // namespace

const std::map<std::string, std::set<std::string>>& layering() {
  // Transitive closure of the PUBLIC link graph in src/*/CMakeLists.txt.
  // A module new to the tree must be added here AND to DESIGN.md; the
  // unknown-module finding below makes that impossible to forget.
  static const std::map<std::string, std::set<std::string>> kLayers = {
      {"util", {}},
      {"obs", {"util"}},
      {"sim", {"util"}},
      {"models", {"util"}},
      {"rt", {"sim", "util"}},
      {"net", {"sim", "obs", "util"}},
      {"server", {"sim", "models", "obs", "util"}},
      {"control", {"server", "sim", "models", "obs", "util"}},
      {"device", {"control", "server", "sim", "models", "obs", "util"}},
      {"core",
       {"device", "server", "net", "control", "models", "sim", "rt", "obs",
        "util"}},
      {"fleet",
       {"core", "device", "server", "net", "control", "models", "sim", "rt",
        "obs", "util"}},
      {"sweep",
       {"core", "device", "server", "net", "control", "models", "sim", "rt",
        "obs", "util"}},
      {"invariants",
       {"fleet", "sweep", "core", "device", "server", "net", "control",
        "models", "sim", "rt", "obs", "util"}},
      // The linter's own tree (tools/lint/) is scanned too and depends
      // on no src/ module.
      {"lint", {}},
  };
  return kLayers;
}

std::vector<Finding> check_architecture(const SourceTree& tree,
                                        std::vector<Finding>* suppressed) {
  std::vector<Finding> out;
  const Sink sink{&out, suppressed};
  const auto& layers = layering();

  for (const SourceFile& file : tree.files()) {
    if (file.module.empty()) continue;
    const auto own = layers.find(file.module);

    for (const IncludeDirective& inc : file.lex.includes) {
      const std::string target = ff_module(inc.path);

      if (!target.empty()) {
        if (own == layers.end()) {
          add_finding(file, inc.line, "layering",
                      "module 'src/" + file.module +
                          "' is not in the DESIGN.md layering DAG; add it "
                          "to ff::lint::layering() and DESIGN.md section 6",
                      sink);
        } else if (target != file.module &&
                   own->second.count(target) == 0) {
          add_finding(
              file, inc.line, "layering",
              "src/" + file.module + " may not include \"" + inc.path +
                  "\": the layering DAG (DESIGN.md section 6) does not "
                  "permit " +
                  file.module + " -> " + target,
              sink);
        }
        if (file.public_header && inc.angled) {
          add_finding(file, inc.line, "header-hygiene",
                      "ff headers must be included as \"" + inc.path +
                          "\", not <" + inc.path + ">",
                      sink);
        }
      } else if (file.public_header && !inc.angled) {
        add_finding(file, inc.line, "header-hygiene",
                    "non-canonical include \"" + inc.path +
                        "\": public headers may include only other public "
                        "\"ff/...\" headers and system <...> headers",
                    sink);
      }
    }

    if (file.public_header && !file.lex.pragma_once) {
      add_finding(file, 1, "header-hygiene",
                  "public header is missing #pragma once", sink);
    }
  }

  CycleFinder(tree, sink).run();

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
