#include "ff/lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace ff::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Cleaned source: line splices (backslash-newline) removed, with a
/// physical line number preserved per remaining character so tokens can
/// report accurate locations.
struct Cleaned {
  std::string text;
  std::vector<int> line;
};

Cleaned splice_lines(const std::string& in) {
  Cleaned out;
  out.text.reserve(in.size());
  out.line.reserve(in.size());
  int line = 1;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\\') {
      std::size_t j = i + 1;
      if (j < in.size() && in[j] == '\r') ++j;
      if (j < in.size() && in[j] == '\n') {
        ++line;
        i = j;
        continue;
      }
    }
    out.text.push_back(in[i]);
    out.line.push_back(line);
    if (in[i] == '\n') ++line;
  }
  return out;
}

class Scanner {
 public:
  explicit Scanner(const std::string& raw) : src_(splice_lines(raw)) {}

  LexedFile run() {
    bool line_start = true;
    while (!eof()) {
      const char c = peek();
      if (c == '\n') {
        line_start = true;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;  // does not reset line_start: "/**/ #if" is not a directive
      }
      if (c == '#' && line_start) {
        directive();
        line_start = true;
        continue;
      }
      line_start = false;
      token(out_.tokens);
    }
    return std::move(out_);
  }

 private:
  bool eof() const { return pos_ >= src_.text.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.text.size() ? src_.text[pos_ + ahead] : '\0';
  }
  int line_at(std::size_t p) const {
    if (src_.line.empty()) return 1;
    return src_.line[p < src_.line.size() ? p : src_.line.size() - 1];
  }
  int cur_line() const { return line_at(pos_); }

  void skip_line_comment() {
    const int line = cur_line();
    pos_ += 2;
    std::string text;
    while (!eof() && peek() != '\n') text.push_back(src_.text[pos_++]);
    out_.comments.push_back({line, std::move(text)});
  }

  void skip_block_comment() {
    pos_ += 2;
    int line = cur_line();
    std::string text;
    const auto flush = [&] {
      if (!text.empty()) out_.comments.push_back({line, text});
      text.clear();
    };
    while (!eof() && !(peek() == '*' && peek(1) == '/')) {
      if (peek() == '\n') {
        flush();
        ++pos_;
        line = cur_line();
        continue;
      }
      text.push_back(src_.text[pos_++]);
    }
    flush();
    if (!eof()) pos_ += 2;
  }

  /// Lexes one token at the cursor into `sink`. Assumes the cursor is on
  /// a non-space, non-comment, non-newline character.
  void token(std::vector<Token>& sink) {
    const int line = cur_line();
    const char c = peek();

    if (is_ident_start(c)) {
      std::string id;
      while (!eof() && is_ident_char(peek())) id.push_back(src_.text[pos_++]);
      // Encoding prefixes fuse with an immediately following literal.
      if (peek() == '"' &&
          (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
           id == "LR")) {
        raw_string();
        sink.push_back({TokKind::kString, "<str>", line});
        return;
      }
      if (peek() == '"' &&
          (id == "u8" || id == "u" || id == "U" || id == "L")) {
        quoted('"');
        sink.push_back({TokKind::kString, "<str>", line});
        return;
      }
      if (peek() == '\'' && (id == "u8" || id == "u" || id == "U" ||
                             id == "L")) {
        quoted('\'');
        sink.push_back({TokKind::kChar, "<chr>", line});
        return;
      }
      sink.push_back({TokKind::kIdentifier, std::move(id), line});
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      std::string num;
      while (!eof()) {
        const char d = peek();
        if (is_ident_char(d) || d == '.') {
          num.push_back(d);
          ++pos_;
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (peek() == '+' || peek() == '-')) {
            num.push_back(src_.text[pos_++]);
          }
          continue;
        }
        if (d == '\'' && is_ident_char(peek(1))) {  // digit separator
          ++pos_;
          continue;
        }
        break;
      }
      sink.push_back({TokKind::kNumber, std::move(num), line});
      return;
    }
    if (c == '"') {
      quoted('"');
      sink.push_back({TokKind::kString, "<str>", line});
      return;
    }
    if (c == '\'') {
      quoted('\'');
      sink.push_back({TokKind::kChar, "<chr>", line});
      return;
    }
    // Punctuation. Only "::" and "->" matter as units to the rules;
    // everything else (including ">>") stays one character per token so
    // template-argument scanning can balance brackets naively.
    if (c == ':' && peek(1) == ':') {
      pos_ += 2;
      sink.push_back({TokKind::kPunct, "::", line});
      return;
    }
    if (c == '-' && peek(1) == '>') {
      pos_ += 2;
      sink.push_back({TokKind::kPunct, "->", line});
      return;
    }
    ++pos_;
    sink.push_back({TokKind::kPunct, std::string(1, c), line});
  }

  /// Consumes a (non-raw) string or char literal, cursor on the opening
  /// quote. Unterminated literals end at the newline.
  void quoted(char quote) {
    ++pos_;
    while (!eof() && peek() != quote && peek() != '\n') {
      pos_ += (peek() == '\\' && pos_ + 1 < src_.text.size()) ? 2 : 1;
    }
    if (!eof() && peek() == quote) ++pos_;
  }

  /// Consumes a raw string literal, cursor on the opening quote (the R
  /// prefix has been consumed). Content, including banned identifiers
  /// and fake quotes across many lines, is skipped entirely.
  void raw_string() {
    ++pos_;  // opening quote
    std::string delim;
    while (!eof() && peek() != '(' && peek() != '\n' && delim.size() < 20) {
      delim.push_back(src_.text[pos_++]);
    }
    if (peek() != '(') return;  // malformed; give up on this literal
    ++pos_;
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.text.find(closer, pos_);
    pos_ = end == std::string::npos ? src_.text.size() : end + closer.size();
  }

  /// Parses one preprocessor directive, cursor on '#'. Line splices are
  /// already folded, so the directive ends at the next newline.
  void directive() {
    ++pos_;  // '#'
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos_;
    std::string name;
    while (!eof() && is_ident_char(peek())) name.push_back(src_.text[pos_++]);

    if (name == "include") {
      parse_include();
    } else if (name == "define") {
      parse_define();
    } else if (name == "pragma") {
      while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos_;
      std::string what;
      while (!eof() && is_ident_char(peek())) {
        what.push_back(src_.text[pos_++]);
      }
      if (what == "once") out_.pragma_once = true;
    }
    // Skip the rest of the directive line, but still harvest trailing
    // comments: "#include <chrono>  // ff-lint: allow(...)" carries a
    // control directive rules must see.
    while (!eof() && peek() != '\n') {
      if (peek() == '/' && peek(1) == '/') {
        skip_line_comment();
        break;
      }
      if (peek() == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      ++pos_;
    }
  }

  void parse_include() {
    const int line = cur_line();
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos_;
    const char open = peek();
    if (open != '<' && open != '"') return;  // computed include; ignore
    const char close = open == '<' ? '>' : '"';
    ++pos_;
    std::string path;
    while (!eof() && peek() != close && peek() != '\n') {
      path.push_back(src_.text[pos_++]);
    }
    out_.includes.push_back({std::move(path), open == '<', line});
  }

  void parse_define() {
    MacroDef def;
    def.line = cur_line();
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos_;
    if (!is_ident_start(peek())) return;
    while (!eof() && is_ident_char(peek())) {
      def.name.push_back(src_.text[pos_++]);
    }
    if (peek() == '(') {  // function-like: skip the parameter list
      def.function_like = true;
      int depth = 0;
      while (!eof() && peek() != '\n') {
        if (peek() == '(') ++depth;
        if (peek() == ')' && --depth == 0) {
          ++pos_;
          break;
        }
        ++pos_;
      }
    }
    // Replacement list: lex like ordinary code until end of line.
    while (!eof() && peek() != '\n') {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      token(def.body);
    }
    out_.macros.push_back(std::move(def));
  }

  Cleaned src_;
  std::size_t pos_{0};
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& text) { return Scanner(text).run(); }

}  // namespace ff::lint
