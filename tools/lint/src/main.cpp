// ff-lint CLI: self-hosted static analysis for the FrameFeedback tree.
// Replaces tools/determinism_lint.py behind the same contract:
//
//   ff-lint [--root DIR]   lint <DIR>/src (plus bench/, examples/ and
//                          tools/lint/ when present; default root:
//                          cwd); exit 1 on findings
//   ff-lint --json=PATH    additionally write the findings as JSON
//   ff-lint --sarif=PATH   additionally write the findings as SARIF
//                          2.1.0 (GitHub code-scanning upload)
//   ff-lint --self-test    run the embedded fixture corpus and verify
//                          every rule fires (and nothing else does)
//
// Rules: wall-clock, ambient-entropy, unordered-pointer-key,
// unordered-iteration, raw-allocation (determinism family);
// layering, include-cycle, header-hygiene (architecture family);
// unguarded-shared-state, lock-order, annotation-parity (concurrency
// family); determinism-reachability (call-graph family);
// container-invalidation (dataflow family); fingerprint-completeness,
// nodiscard-contract (repo-contract family); stale-allow (meta).
// Escape hatch: `// ff-lint: allow(<rule>) <reason>`; stale-allow has
// none (delete the dead directive instead).

#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "ff/lint/driver.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: ff-lint [--root DIR] [--json=PATH] [--sarif=PATH] "
        "[--self-test]\n";
  return code;
}

int write_report(const ff::lint::LintResult& result,
                 const std::string& path,
                 void (*writer)(const ff::lint::LintResult&,
                                std::ostream&)) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ff-lint: cannot write " << path << "\n";
    return 2;
  }
  writer(result, out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string sarif_path;
  bool run_self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      run_self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "ff-lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (run_self_test) return ff::lint::self_test(std::cout);

  try {
    const ff::lint::LintResult result = ff::lint::lint_tree(root);
    for (const ff::lint::Finding& f : result.findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    if (!json_path.empty()) {
      const int rc =
          write_report(result, json_path, ff::lint::write_findings_json);
      if (rc != 0) return rc;
    }
    if (!sarif_path.empty()) {
      const int rc =
          write_report(result, sarif_path, ff::lint::write_findings_sarif);
      if (rc != 0) return rc;
    }
    if (!result.findings.empty()) {
      std::cerr << "ff-lint: FAILED (" << result.findings.size()
                << " finding(s)); fix or annotate with "
                   "'// ff-lint: allow(<rule>) <reason>'\n";
      return 1;
    }
    std::cout << "ff-lint: OK (" << result.files_scanned
              << " files scanned)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
