#include "ff/lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace ff::lint {
namespace {

const Token kNone{TokKind::kPunct, "", 0};

const Token& prev(const std::vector<Token>& t, std::size_t i,
                  std::size_t back = 1) {
  return i >= back ? t[i - back] : kNone;
}

const Token& next(const std::vector<Token>& t, std::size_t i,
                  std::size_t fwd = 1) {
  return i + fwd < t.size() ? t[i + fwd] : kNone;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

/// True for `x` in `obj.x`, `p->x`, or `ns::x` where ns != std -- i.e.
/// the name is a member or lives in a user namespace, so it is not the
/// global/std entity the rule bans.
bool member_or_user_qualified(const std::vector<Token>& t, std::size_t i) {
  const Token& p = prev(t, i);
  if (p.text == "." || p.text == "->") return true;
  if (p.text == "::") {
    const Token& q = prev(t, i, 2);
    return q.kind == TokKind::kIdentifier && q.text != "std";
  }
  return false;
}

bool is_wall_clock_name(const std::string& s) {
  return s == "system_clock" || s == "steady_clock" ||
         s == "high_resolution_clock";
}

/// Raw pattern match over a token stream; scope filtering happens in the
/// caller. Covers every rule that needs no cross-statement state.
std::vector<Finding> scan_tokens(const std::vector<Token>& toks) {
  std::vector<Finding> out;
  const auto add = [&](int line, const char* rule, const std::string& msg) {
    out.push_back({"", line, rule, msg});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    // -- wall-clock ------------------------------------------------------
    if (is_wall_clock_name(t.text)) {
      add(t.line, "wall-clock",
          "wall-clock read in deterministic code; use Simulator::now()");
      continue;
    }
    if ((t.text == "clock_gettime" || t.text == "gettimeofday") &&
        next(toks, i).text == "(") {
      add(t.line, "wall-clock",
          "wall-clock read in deterministic code; use Simulator::now()");
      continue;
    }

    // -- ambient-entropy -------------------------------------------------
    if (t.text == "random_device" && !member_or_user_qualified(toks, i)) {
      add(t.line, "ambient-entropy",
          "ambient entropy source; use the seeded ff::Rng");
      continue;
    }
    if ((t.text == "rand" || t.text == "srand") &&
        next(toks, i).text == "(" && !member_or_user_qualified(toks, i)) {
      add(t.line, "ambient-entropy",
          "ambient entropy source; use the seeded ff::Rng");
      continue;
    }
    if (t.text == "time" && next(toks, i).text == "(" &&
        !member_or_user_qualified(toks, i)) {
      const Token& arg = next(toks, i, 2);
      if (arg.text == "NULL" || arg.text == "nullptr" || arg.text == "0" ||
          arg.text == "&") {
        add(t.line, "ambient-entropy",
            "ambient entropy source; use the seeded ff::Rng");
        continue;
      }
    }

    // -- unordered-pointer-key -------------------------------------------
    if ((t.text == "unordered_map" || t.text == "unordered_set") &&
        next(toks, i).text == "<") {
      int angle = 0;
      int paren = 0;
      bool star = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& s = toks[j].text;
        if (s == "<") ++angle;
        if (s == ">" && --angle == 0) break;
        if (s == "(") ++paren;
        if (s == ")") --paren;
        if (s == "," && angle == 1 && paren == 0) break;  // end of key type
        if (s == "*") star = true;
      }
      if (star) {
        add(t.line, "unordered-pointer-key",
            "pointer-keyed hash container: iteration order follows ASLR");
      }
      continue;
    }

    // -- raw-allocation --------------------------------------------------
    if (t.text == "new") {
      if (prev(toks, i).text == "operator") {
        if (prev(toks, i, 2).text == "::" && next(toks, i).text == "(") {
          add(t.line, "raw-allocation",
              "direct allocation in event-dispatch code; the kernel hot "
              "path is allocation-free (see tests/sim/allocation_test.cpp)");
        }
      } else if (next(toks, i).kind == TokKind::kIdentifier) {
        // `new (addr) T` placement form is excluded: next is '('.
        add(t.line, "raw-allocation",
            "direct allocation in event-dispatch code; the kernel hot "
            "path is allocation-free (see tests/sim/allocation_test.cpp)");
      }
      continue;
    }
    if (t.text == "malloc" && next(toks, i).text == "(" &&
        !member_or_user_qualified(toks, i)) {
      add(t.line, "raw-allocation",
          "direct allocation in event-dispatch code; the kernel hot "
          "path is allocation-free (see tests/sim/allocation_test.cpp)");
      continue;
    }
  }
  return out;
}

/// Replacement list of `def` with nested macros expanded (arguments are
/// ignored; only the banned-construct tokens matter for classification).
std::vector<Token> expand_macro(const SourceTree& tree, const MacroDef& def,
                                std::set<std::string>* stack, int depth) {
  std::vector<Token> out;
  if (depth > 8 || !stack->insert(def.name).second) return out;
  for (const Token& t : def.body) {
    const MacroDef* nested = t.kind == TokKind::kIdentifier
                                 ? tree.macro(t.text)
                                 : nullptr;
    if (nested != nullptr && nested->name != def.name) {
      const std::vector<Token> sub =
          expand_macro(tree, *nested, stack, depth + 1);
      out.insert(out.end(), sub.begin(), sub.end());
    } else {
      out.push_back(t);
    }
  }
  stack->erase(def.name);
  return out;
}

/// Range-for statements whose range expression is a bare (optionally
/// this->-qualified) name of a visible unordered container.
std::vector<Finding> scan_unordered_iteration(
    const std::vector<Token>& toks, const std::set<std::string>& decls) {
  std::vector<Finding> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || toks[i + 1].text != "(") continue;
    int paren = 1;
    std::size_t colon = 0;
    for (std::size_t j = i + 2; j < toks.size() && paren > 0; ++j) {
      const std::string& s = toks[j].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (paren == 1 && s == ";") break;  // classic for loop
      if (paren == 1 && s == ":") {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    // Range expression: tokens from colon+1 to the matching ')'.
    std::vector<const Token*> expr;
    paren = 1;
    for (std::size_t j = colon + 1; j < toks.size(); ++j) {
      const std::string& s = toks[j].text;
      if (s == "(") ++paren;
      if (s == ")" && --paren == 0) break;
      expr.push_back(&toks[j]);
    }
    const Token* name = nullptr;
    if (expr.size() == 1) name = expr[0];
    if (expr.size() == 3 && is_ident(*expr[0], "this") &&
        expr[1]->text == "->") {
      name = expr[2];
    }
    if (name != nullptr && name->kind == TokKind::kIdentifier &&
        decls.count(name->text) > 0) {
      out.push_back(
          {"", name->line, "unordered-iteration",
           "range-for over unordered container '" + name->text +
               "': iteration order is unspecified and must not feed "
               "scheduling decisions"});
    }
  }
  return out;
}

}  // namespace

bool in_dirs(const std::string& rel, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (rel.size() > d.size() && rel.compare(0, d.size(), d) == 0 &&
        rel[d.size()] == '/') {
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& deterministic_dirs() {
  static const std::vector<std::string> kDirs = {
      "src/sim",    "src/net",   "src/control", "src/core",  "src/device",
      "src/server", "src/rt",    "src/sweep",   "src/invariants",
      "src/fleet"};
  return kDirs;
}

const std::vector<std::string>& scheduling_dirs() {
  static const std::vector<std::string> kDirs = {"src/sim", "src/server",
                                                 "src/device"};
  return kDirs;
}

const std::vector<std::string>& dispatch_dirs() {
  static const std::vector<std::string> kDirs = {"src/sim"};
  return kDirs;
}

std::vector<Finding> scan_determinism_tokens(const std::vector<Token>& toks) {
  return scan_tokens(toks);
}

std::vector<Finding> scan_unordered_iteration_tokens(
    const std::vector<Token>& toks, const std::set<std::string>& decls) {
  return scan_unordered_iteration(toks, decls);
}

std::vector<std::string> macro_hazards(const SourceTree& tree,
                                       const MacroDef& def) {
  std::set<std::string> stack;
  const std::vector<Token> body = expand_macro(tree, def, &stack, 0);
  std::set<std::string> rules;
  for (const Finding& f : scan_tokens(body)) rules.insert(f.rule);
  return {rules.begin(), rules.end()};
}

std::vector<Finding> check_determinism(const SourceTree& tree,
                                       const SourceFile& file,
                                       std::vector<Finding>* suppressed) {
  std::vector<Finding> raw;
  if (in_dirs(file.rel, deterministic_dirs())) {
    // Direct uses in the code token stream.
    raw = scan_tokens(file.lex.tokens);

    // Bodies of macros defined in this file: a hazardous definition is a
    // finding even before its first expansion.
    for (const MacroDef& def : file.lex.macros) {
      for (Finding f : scan_tokens(def.body)) {
        f.line = def.line;
        f.message = "macro '" + def.name + "' body: " + f.message;
        raw.push_back(std::move(f));
      }
    }

    // Expansion sites of macros (defined anywhere in the tree, including
    // outside the deterministic directories) whose expansion contains a
    // banned construct -- the case the regex linter could not see.
    for (const Token& t : file.lex.tokens) {
      if (t.kind != TokKind::kIdentifier) continue;
      const MacroDef* def = tree.macro(t.text);
      if (def == nullptr) continue;
      for (const std::string& rule : macro_hazards(tree, *def)) {
        raw.push_back({"", t.line, rule,
                       "expansion of macro '" + def->name +
                           "' contains a banned construct (" + rule + ")"});
      }
    }
  }

  if (in_dirs(file.rel, scheduling_dirs())) {
    const std::vector<Finding> iter = scan_unordered_iteration(
        file.lex.tokens, tree.visible_unordered_decls(file));
    raw.insert(raw.end(), iter.begin(), iter.end());
  }

  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (f.rule == "raw-allocation" && !in_dirs(file.rel, dispatch_dirs())) {
      continue;
    }
    f.file = file.rel;
    if (allowed_rules_for(file, f.line).count(f.rule) > 0) {
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ff::lint
