#include <map>
#include <ostream>
#include <set>

#include "ff/lint/driver.h"

namespace ff::lint {
namespace {

// One violation per rule, plus the two classes of case the retired
// regex linter (tools/determinism_lint.py) provably missed -- a banned
// construct reaching linted code only through a macro defined in
// another (unlinted) module, and iteration over an unordered container
// declared in a header included from another file -- plus clean decoys
// for its false-positive classes (comments, string literals, multi-line
// raw strings, placement new, keyed lookups, member names).
const std::vector<std::pair<std::string, std::string>> kCorpus = {
    // wall-clock: direct use.
    {"src/sim/bad_clock.cpp", R"corpus(#include <chrono>
double wall_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
)corpus"},

    // wall-clock: via macro. The definition lives in src/util, which the
    // determinism rules do not cover, and the use site contains no
    // banned substring -- invisible to a regex, caught by the macro
    // table. FF_SQUARE is the benign control.
    {"src/util/include/ff/util/wall_macro.h", R"corpus(#pragma once
#include <chrono>
#define FF_WALL_NOW() \
  std::chrono::steady_clock::now().time_since_epoch().count()
#define FF_SQUARE(x) ((x) * (x))
)corpus"},
    {"src/sim/macro_clock.cpp", R"corpus(#include "ff/util/wall_macro.h"
double stamp() { return FF_WALL_NOW(); }
)corpus"},
    {"src/server/good_macro.cpp", R"corpus(#include "ff/util/wall_macro.h"
int nine() { return FF_SQUARE(3); }
)corpus"},

    // ambient-entropy: all three banned sources.
    {"src/net/bad_entropy.cpp", R"corpus(#include <cstdlib>
#include <ctime>
#include <random>
int jitter() { return std::rand(); }
long stamp() { return time(nullptr); }
unsigned seed() { std::random_device rd; return rd(); }
)corpus"},

    // unordered-pointer-key: declaration split across lines, which a
    // line-oriented regex cannot match.
    {"src/server/bad_ptr_key.cpp", R"corpus(#include <unordered_map>
struct Flow;
std::unordered_map<
    Flow*, int>
    by_flow_;
)corpus"},

    // unordered-iteration: container declared in a header, iterated in
    // the .cpp that includes it -- the cross-file case the regex linter
    // (same-file declarations only) missed.
    {"src/device/include/ff/device/session_table.h", R"corpus(#pragma once
#include <unordered_map>
struct SessionTable {
  int total() const;
  int depth(int id) const { return sessions_.at(id); }
  std::unordered_map<int, int> sessions_;
};
)corpus"},
    {"src/device/src/session_table.cpp",
     R"corpus(#include "ff/device/session_table.h"
int SessionTable::total() const {
  int n = 0;
  for (const auto& kv : sessions_) n += kv.second;
  return n;
}
)corpus"},

    // raw-allocation in event-dispatch code.
    {"src/sim/bad_alloc.cpp", R"corpus(struct Event { int id; };
Event* dispatch() { return new Event{1}; }
)corpus"},

    // layering: models may not reach up into core.
    {"src/models/src/bad_layer.cpp",
     R"corpus(#include "ff/core/experiment.h"
int answer() { return 42; }
)corpus"},

    // include-cycle between two public headers.
    {"src/net/include/ff/net/cycle_a.h", R"corpus(#pragma once
#include "ff/net/cycle_b.h"
struct CycleA {};
)corpus"},
    {"src/net/include/ff/net/cycle_b.h", R"corpus(#pragma once
#include "ff/net/cycle_a.h"
struct CycleB {};
)corpus"},

    // header-hygiene: no #pragma once, relative include.
    {"src/control/include/ff/control/loose.h",
     R"corpus(#include "../detail/impl.h"
struct Loose {};
)corpus"},

    // Clean decoys: none of these may produce a finding.
    {"src/core/good_clean.cpp",
     R"corpus(// steady_clock in a comment must not trip the lint
#include <unordered_map>
const char* kDoc = "std::rand(), malloc() and new Event are banned";
const char* kRaw = R"lint(
  std::chrono::steady_clock::now();
  time(NULL); malloc(4);
  for (auto& kv : table_) {}
)lint";
struct Stamp {
  double time;
  explicit Stamp(double t) : time(t) {}
};
std::unordered_map<int, int> table_;
int lookup(int k) { return table_.at(k); }
)corpus"},
    {"src/sim/good_sim.cpp", R"corpus(#include <new>
struct Stamp {
  double t;
};
void* emplace(void* slot) { return ::new (slot) Stamp{0.0}; }
char* grow() {
  // ff-lint: allow(raw-allocation) slab growth, amortized out of the
  // steady state.
  return new char[512];
}
)corpus"},
    {"src/rt/good_allowed.cpp", R"corpus(#include <chrono>
double pace() {
  // ff-lint: allow(wall-clock) realtime pacing measures wall time.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)corpus"},

    // unguarded-shared-state: a mutex-owning class with one plain member
    // next to annotated, atomic and const ones. Only last_key_ fires.
    {"src/util/include/ff/util/bad_guard.h", R"corpus(#pragma once
#include <atomic>
#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"
class BadCache {
 public:
  int get(int key);
 private:
  ff::Mutex mutex_;
  int last_key_ = 0;
  int hits_ FF_GUARDED_BY(mutex_) = 0;
  std::atomic<int> misses_{0};
  const int capacity_ = 64;
};
)corpus"},

    // lock-order: two free functions take the same pair of locks in
    // opposite orders -- a classic AB/BA deadlock.
    {"src/rt/bad_order.cpp", R"corpus(#include "ff/util/sync.h"
namespace {
ff::Mutex g_head;
ff::Mutex g_tail;
int g_n = 0;
}  // namespace
void push_front() {
  ff::MutexLock a(g_head);
  ff::MutexLock b(g_tail);
  ++g_n;
}
void pop_back() {
  ff::MutexLock a(g_tail);
  ff::MutexLock b(g_head);
  --g_n;
}
)corpus"},

    // annotation-parity: an FF_ACQUIRE method with no matching
    // FF_RELEASE anywhere in the class.
    {"src/control/include/ff/control/bad_parity.h", R"corpus(#pragma once
#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"
class Gate {
 public:
  void enter() FF_ACQUIRE(mutex_);
 private:
  ff::Mutex mutex_;
};
)corpus"},

    // determinism-reachability: the wall clock hides behind FF_WALL_NOW
    // (defined in the unlinted util module above) inside a helper that a
    // scheduled lambda calls. bench/ is outside the determinism dirs, so
    // only the call-graph rule can see this.
    {"bench/bad_reach.cpp", R"corpus(#include "ff/util/wall_macro.h"
double now_ms() { return FF_WALL_NOW() / 1e6; }
template <class Sim>
void install_probe(Sim& sim) {
  sim.schedule_in(1000, [&] { sim.record(now_ms()); });
}
)corpus"},

    // Reachability decoy: the same hazard in a helper only main() calls
    // is fine -- main is not a dispatch root.
    {"bench/good_unreached.cpp", R"corpus(#include <chrono>
double wall_probe() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
int main() { return wall_probe() > 0.0 ? 0 : 1; }
)corpus"},

    // Multi-line allow decoy: the allow() sits mid-statement, two lines
    // below the line the finding lands on. Statement-extent suppression
    // must still cover it (the old per-line matcher did not).
    {"src/server/good_multiline_allow.cpp",
     R"corpus(#include <unordered_map>
struct Flow;
std::unordered_map<
    Flow*,
    // ff-lint: allow(unordered-pointer-key) diagnostics-only index,
    // never iterated.
    int>
    by_ptr_;
)corpus"},

    // Concurrency decoys: fully annotated class, and the same lock pair
    // taken in one consistent order.
    {"src/net/good_sync.cpp", R"corpus(#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"
class Counter {
 public:
  void add(int n) {
    ff::MutexLock lock(mutex_);
    total_ += n;
  }
 private:
  ff::Mutex mutex_;
  int total_ FF_GUARDED_BY(mutex_) = 0;
};
namespace {
ff::Mutex g_front;
ff::Mutex g_back;
}  // namespace
void drain() {
  ff::MutexLock a(g_front);
  ff::MutexLock b(g_back);
}
void refill() {
  ff::MutexLock a(g_front);
  ff::MutexLock b(g_back);
}
)corpus"},

    // container-invalidation: a reference into a vector used after a
    // growing push_back without an intervening reserve.
    {"src/core/bad_invalidation.cpp", R"corpus(#include <vector>
int last_after_grow() {
  std::vector<int> v;
  v.push_back(1);
  const int& tail = v.back();
  v.push_back(2);
  return tail;
}
)corpus"},

    // container-invalidation decoys: reserve-preceded growth, deque
    // push stability, and a reference re-taken after the mutation.
    {"src/core/good_invalidation.cpp", R"corpus(#include <deque>
#include <vector>
int stable_patterns() {
  std::vector<int> v;
  v.reserve(8);
  v.push_back(1);
  int& first = v.front();
  v.push_back(2);
  std::deque<int> d;
  d.push_back(1);
  int& head = d.front();
  d.push_back(2);
  int& fresh = v.back();
  return first + head + fresh;
}
)corpus"},

    // fingerprint-completeness: a curated result struct whose double
    // field never reaches result_fingerprint. The exempted sibling
    // (with a rationale) is the clean decoy and keeps its directive
    // load-bearing for stale-allow.
    {"src/sweep/bad_fingerprint.cpp", R"corpus(#include <cstdint>
struct TelemetryTotals {
  uint64_t frames_offered = 0;
  uint64_t frames_completed = 0;
  uint64_t frames_dropped = 0;
  double mean_latency_ms = 0.0;
  // ff-lint: allow(fingerprint-exempt) config echo, not a result.
  double debug_echo = 0.0;
};
uint64_t result_fingerprint(const TelemetryTotals& t) {
  uint64_t h = 0xcbf29ce484222325ull;
  h ^= t.frames_offered;
  h ^= t.frames_completed;
  h ^= t.frames_dropped;
  return h;
}
)corpus"},

    // nodiscard-contract (declaration): a curated try_* API that is not
    // [[nodiscard]].
    {"src/net/bad_nodiscard_decl.cpp", R"corpus(class SlotTable {
 public:
  bool try_claim(int id);
};
)corpus"},

    // nodiscard-contract (call): a curated call whose result is
    // discarded in expression-statement position.
    {"src/device/bad_nodiscard_call.cpp", R"corpus(struct Queue {
  [[nodiscard]] bool try_push(int v);
};
void feed(Queue& q) {
  q.try_push(7);
}
)corpus"},

    // nodiscard decoys: consumed result, explicit (void) discard, and a
    // curated name with a visible void-returning overload.
    {"src/device/good_nodiscard.cpp", R"corpus(struct Queue2 {
  [[nodiscard]] bool try_pop(int* out);
};
struct Sink {
  void submit(int v);
};
void drain_all(Queue2& q, Sink& s) {
  int v = 0;
  if (q.try_pop(&v)) s.submit(v);
  (void)q.try_pop(&v);
  s.submit(3);
}
)corpus"},

    // stale-allow: a directive whose statement extent produces no
    // finding for the named rule.
    {"src/net/bad_stale_allow.cpp", R"corpus(unsigned checksum(unsigned x) {
  // ff-lint: allow(ambient-entropy) legacy seed path, removed in v3.
  return x * 2654435761u;
}
)corpus"},
};

const std::vector<std::pair<std::string, std::string>> kExpected = {
    {"bench/bad_reach.cpp", "determinism-reachability"},
    {"src/control/include/ff/control/bad_parity.h", "annotation-parity"},
    {"src/control/include/ff/control/loose.h", "header-hygiene"},
    {"src/core/bad_invalidation.cpp", "container-invalidation"},
    {"src/device/bad_nodiscard_call.cpp", "nodiscard-contract"},
    {"src/device/src/session_table.cpp", "unordered-iteration"},
    {"src/models/src/bad_layer.cpp", "layering"},
    {"src/net/bad_entropy.cpp", "ambient-entropy"},
    {"src/net/bad_nodiscard_decl.cpp", "nodiscard-contract"},
    {"src/net/bad_stale_allow.cpp", "stale-allow"},
    {"src/net/include/ff/net/cycle_b.h", "include-cycle"},
    {"src/rt/bad_order.cpp", "lock-order"},
    {"src/server/bad_ptr_key.cpp", "unordered-pointer-key"},
    {"src/sim/bad_alloc.cpp", "raw-allocation"},
    {"src/sim/bad_clock.cpp", "wall-clock"},
    {"src/sim/macro_clock.cpp", "wall-clock"},
    {"src/sweep/bad_fingerprint.cpp", "fingerprint-completeness"},
    {"src/util/include/ff/util/bad_guard.h", "unguarded-shared-state"},
};

}  // namespace

const std::vector<std::pair<std::string, std::string>>& self_test_corpus() {
  return kCorpus;
}

const std::vector<std::pair<std::string, std::string>>&
self_test_expected() {
  return kExpected;
}

int self_test(std::ostream& os) {
  const LintResult result = lint_files(kCorpus);

  std::set<std::pair<std::string, std::string>> got;
  for (const Finding& f : result.findings) got.insert({f.file, f.rule});

  bool ok = true;
  for (const auto& want : kExpected) {
    if (got.count(want) > 0) {
      os << "self-test: PASS caught " << want.second << " in " << want.first
         << "\n";
    } else {
      os << "self-test: FAIL missed " << want.second << " in " << want.first
         << "\n";
      ok = false;
    }
  }
  const std::set<std::pair<std::string, std::string>> expected(
      kExpected.begin(), kExpected.end());
  for (const auto& extra : got) {
    if (expected.count(extra) == 0) {
      os << "self-test: FAIL false positive " << extra.second << " in "
         << extra.first << "\n";
      ok = false;
    }
  }
  // Every rule the linter can emit must have at least one seeded corpus
  // finding, so a rule can never silently rot into a no-op. CI greps
  // for the coverage line.
  std::set<std::string> seeded;
  for (const auto& want : kExpected) seeded.insert(want.second);
  std::size_t covered = 0;
  for (const std::string& rule : rule_registry()) {
    if (seeded.count(rule) > 0) {
      ++covered;
    } else {
      os << "self-test: FAIL rule '" << rule
         << "' has no seeded corpus finding\n";
      ok = false;
    }
  }
  os << "self-test: coverage " << covered << "/" << rule_registry().size()
     << " rules seeded\n";
  os << "self-test: " << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}

}  // namespace ff::lint
