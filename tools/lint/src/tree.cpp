#include "ff/lint/tree.h"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace ff::lint {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

/// Scans a token stream for unordered_{map,set} variable declarations:
///   [std ::] unordered_map < ...balanced... > name (; | { | = | ,)
/// Multi-line declarations and nested template arguments are handled by
/// bracket balancing, which the retired regex linter could not do.
std::set<std::string> find_unordered_decls(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier ||
        (t.text != "unordered_map" && t.text != "unordered_set")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) break;
    }
    if (j >= toks.size()) continue;
    // After the closing '>': an identifier then a declarator terminator.
    if (j + 2 < toks.size() && toks[j + 1].kind == TokKind::kIdentifier) {
      const std::string& next = toks[j + 2].text;
      if (next == ";" || next == "{" || next == "=" || next == ",") {
        names.insert(toks[j + 1].text);
      }
    }
  }
  return names;
}

/// Scans for declarations of growable containers whose element storage
/// can move on mutation:
///   [std ::] (vector|deque|basic_string) < ...balanced... > name term
///   [std ::] string name term
/// where term is one of `;` `{` `=` `,`. References and pointers into
/// containers (`vector<T>& v`) are bindings, not containers, and are
/// deliberately not matched (the declarator position holds `&`/`*`).
std::map<std::string, std::string> find_container_decls(
    const std::vector<Token>& toks) {
  std::map<std::string, std::string> decls;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const bool templated =
        t.text == "vector" || t.text == "deque" || t.text == "basic_string";
    if (!templated && t.text != "string") continue;
    std::size_t j = i + 1;
    if (templated) {
      if (j >= toks.size() || toks[j].text != "<") continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      ++j;
    }
    if (j + 1 >= toks.size() || toks[j].kind != TokKind::kIdentifier) {
      continue;
    }
    const std::string& next = toks[j + 1].text;
    if (next == ";" || next == "{" || next == "=" || next == ",") {
      decls.emplace(toks[j].text, t.text == "deque" ? "deque"
                                  : t.text == "vector" ? "vector"
                                                       : "string");
    }
  }
  return decls;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

/// Parses every `ff-lint: allow(<rule>)` occurrence in one comment's
/// text; `line` is the physical line the comment text came from.
void collect_allows(const std::string& text, int line,
                    std::vector<AllowDirective>* out) {
  const std::string kTag = "ff-lint:";
  for (std::size_t at = text.find(kTag); at != std::string::npos;
       at = text.find(kTag, at + kTag.size())) {
    std::size_t i = skip_ws(text, at + kTag.size());
    const std::string kAllow = "allow(";
    if (text.compare(i, kAllow.size(), kAllow) != 0) continue;
    i += kAllow.size();
    std::string rule;
    while (i < text.size() && (std::isalnum(static_cast<unsigned char>(
                                   text[i])) ||
                               text[i] == '-')) {
      rule.push_back(text[i++]);
    }
    if (i < text.size() && text[i] == ')' && !rule.empty()) {
      const std::size_t after = skip_ws(text, i + 1);
      out->push_back({line, rule, after < text.size()});
    }
  }
}

void collect_allow_rules(const SourceFile& file, int line,
                         std::set<std::string>* out) {
  const auto it = file.comments.find(line);
  if (it == file.comments.end()) return;
  std::vector<AllowDirective> dirs;
  collect_allows(it->second, line, &dirs);
  for (const AllowDirective& d : dirs) out->insert(d.rule);
}

/// True when the line's first non-whitespace characters are `//` — the
/// contiguous-comment-block test used to extend directive scope above a
/// statement.
bool is_comment_line(const SourceFile& file, std::size_t idx) {
  if (idx >= file.lines.size()) return false;
  const std::string& l = file.lines[idx];
  const std::size_t at = l.find_first_not_of(" \t");
  return at != std::string::npos && l.compare(at, 2, "//") == 0;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string module_of(const std::string& rel) {
  if (starts_with(rel, "tools/lint/")) return "lint";
  const std::string kSrc = "src/";
  if (!starts_with(rel, kSrc)) return "";
  const std::size_t end = rel.find('/', kSrc.size());
  if (end == std::string::npos) return "";
  return rel.substr(kSrc.size(), end - kSrc.size());
}

std::vector<AllowDirective> allow_directives(const SourceFile& file) {
  std::vector<AllowDirective> dirs;
  for (const auto& [line, text] : file.comments) {
    collect_allows(text, line, &dirs);
  }
  return dirs;
}

std::set<std::string> allowed_rules(const SourceFile& file, int line) {
  std::set<std::string> allows;
  collect_allow_rules(file, line, &allows);
  for (std::size_t j = static_cast<std::size_t>(line - 1); j-- > 0;) {
    if (!is_comment_line(file, j)) break;
    collect_allow_rules(file, static_cast<int>(j) + 1, &allows);
  }
  return allows;
}

StatementExtent statement_extent(const std::vector<Token>& toks, int line) {
  int first = 0;   // first line of the current statement (0 = none yet)
  int paren = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.line > line && first == 0) break;  // no token on `line`
    if (first == 0) first = t.line;
    const bool boundary =
        t.kind == TokKind::kPunct &&
        ((t.text == ";" && paren == 0) || t.text == "{" || t.text == "}");
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")" && paren > 0) --paren;
    }
    if (boundary) {
      // The boundary token closes the statement it ends on.
      if (t.line >= line && first <= line) return {first, t.line};
      first = 0;
      continue;
    }
    // Statement ran past `line` without closing: extend to its end.
    if (t.line >= line && first <= line) {
      int last = t.line;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& u = toks[j];
        if (u.kind == TokKind::kPunct) {
          if (u.text == "(") ++paren;
          if (u.text == ")" && paren > 0) --paren;
          if ((u.text == ";" && paren == 0) || u.text == "{" ||
              u.text == "}") {
            return {first, u.line};
          }
        }
        last = u.line;
      }
      return {first, last};
    }
  }
  return {line, line};
}

std::set<std::string> allowed_rules_for(const SourceFile& file, int line) {
  const StatementExtent ext = statement_extent(file.lex.tokens, line);
  // Comment block above the statement start, plus the start line itself.
  std::set<std::string> allows = allowed_rules(file, ext.first);
  // Every further physical line of the statement.
  for (int l = ext.first + 1; l <= ext.last; ++l) {
    collect_allow_rules(file, l, &allows);
  }
  return allows;
}

bool directive_covers(const SourceFile& file, int directive_line,
                      int finding_line) {
  const StatementExtent ext = statement_extent(file.lex.tokens, finding_line);
  if (directive_line >= ext.first && directive_line <= ext.last) return true;
  for (std::size_t j = static_cast<std::size_t>(ext.first - 1); j-- > 0;) {
    if (!is_comment_line(file, j)) break;
    if (static_cast<int>(j) + 1 == directive_line) return true;
  }
  return false;
}

SourceTree::SourceTree(
    const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [rel, content] : files) {
    SourceFile f;
    f.rel = rel;
    f.module = module_of(rel);
    if (!f.module.empty()) {
      const std::string pub = starts_with(rel, "tools/")
                                  ? "tools/lint/include/"
                                  : "src/" + f.module + "/include/";
      if (starts_with(rel, pub)) {
        f.public_header = true;
        f.header_key = rel.substr(pub.size());
      }
    }
    f.lines = split_lines(content);
    f.lex = lex(content);
    for (const CommentLine& c : f.lex.comments) {
      std::string& slot = f.comments[c.line];
      if (!slot.empty()) slot.push_back(' ');
      slot += c.text;
    }
    f.unordered_decls = find_unordered_decls(f.lex.tokens);
    f.container_decls = find_container_decls(f.lex.tokens);
    for (const MacroDef& m : f.lex.macros) macros_.emplace(m.name, m);
    files_.push_back(std::move(f));
  }
  std::sort(files_.begin(), files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].public_header) by_header_key_[files_[i].header_key] = i;
  }
}

const SourceFile* SourceTree::resolve(const std::string& path) const {
  const auto it = by_header_key_.find(path);
  return it == by_header_key_.end() ? nullptr : &files_[it->second];
}

const MacroDef* SourceTree::macro(const std::string& name) const {
  const auto it = macros_.find(name);
  return it == macros_.end() ? nullptr : &it->second;
}

std::set<std::string> SourceTree::visible_unordered_decls(
    const SourceFile& file) const {
  std::set<std::string> names = file.unordered_decls;
  std::set<std::string> seen;
  std::vector<const SourceFile*> work{&file};
  while (!work.empty()) {
    const SourceFile* cur = work.back();
    work.pop_back();
    for (const IncludeDirective& inc : cur->lex.includes) {
      if (!seen.insert(inc.path).second) continue;
      const SourceFile* next = resolve(inc.path);
      if (next == nullptr) continue;
      names.insert(next->unordered_decls.begin(),
                   next->unordered_decls.end());
      work.push_back(next);
    }
  }
  return names;
}

std::map<std::string, std::string> SourceTree::visible_container_decls(
    const SourceFile& file) const {
  std::map<std::string, std::string> decls = file.container_decls;
  std::set<std::string> seen;
  std::vector<const SourceFile*> work{&file};
  while (!work.empty()) {
    const SourceFile* cur = work.back();
    work.pop_back();
    for (const IncludeDirective& inc : cur->lex.includes) {
      if (!seen.insert(inc.path).second) continue;
      const SourceFile* next = resolve(inc.path);
      if (next == nullptr) continue;
      decls.insert(next->container_decls.begin(),
                   next->container_decls.end());
      work.push_back(next);
    }
  }
  return decls;
}

}  // namespace ff::lint
