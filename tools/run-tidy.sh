#!/usr/bin/env bash
# clang-tidy gate: runs the project check set (.clang-tidy) over every
# first-party translation unit in the compilation database and fails on any
# finding (WarningsAsErrors covers the whole set).
#
# Usage:
#   tools/run-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (the top-level CMakeLists.txt forces it on). When clang-tidy is not on
# PATH the gate is SKIPPED with exit 0 so that developer machines without
# LLVM can still run the full local pipeline; CI installs clang-tidy and is
# therefore always enforcing. Set FF_TIDY_STRICT=1 to turn the missing-tool
# skip into a hard failure.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
[[ "${1:-}" == "--" ]] && shift

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  if [[ "${FF_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run-tidy: FATAL: '$TIDY_BIN' not found and FF_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run-tidy: SKIPPED: '$TIDY_BIN' not found on PATH (set CLANG_TIDY or install llvm)." >&2
  exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$DB" ]]; then
  echo "run-tidy: FATAL: $DB not found; configure with: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party TUs only: src/, examples/, bench/ and tests/ drivers. Third
# party code never appears in this tree, but the filter also keeps generated
# files (if any ever land in the build dir) out of the gate.
mapfile -t FILES < <(python3 - "$DB" <<'EOF'
import json, os, sys
db = json.load(open(sys.argv[1]))
roots = ("src/", "examples/", "bench/", "tests/")
seen = set()
for entry in db:
    path = os.path.relpath(os.path.join(entry["directory"], entry["file"]),
                           os.getcwd())
    if path.startswith(roots) and path not in seen:
        seen.add(path)
        print(path)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run-tidy: FATAL: no first-party files found in $DB" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "run-tidy: checking ${#FILES[@]} files with $TIDY_BIN (-j$JOBS)"

# clang-tidy has no -j; fan out with xargs. --quiet suppresses the
# "N warnings generated" chatter from system headers.
FAILED=0
printf '%s\n' "${FILES[@]}" \
  | xargs -P "$JOBS" -n 4 "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$@" \
  || FAILED=1

if [[ $FAILED -ne 0 ]]; then
  echo "run-tidy: FAILED: findings above must be fixed or suppressed in .clang-tidy" >&2
  exit 1
fi
echo "run-tidy: OK"
